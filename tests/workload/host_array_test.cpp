#include "ghs/workload/host_array.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ghs/util/error.hpp"

namespace ghs::workload {
namespace {

TEST(HostArrayTest, SerialSumOfOnes) {
  const auto a = HostArray::make(CaseId::kC1, 1000, Pattern::kOnes, 1);
  EXPECT_EQ(a.serial_sum().i, 1000);
  EXPECT_FALSE(a.serial_sum().floating);
}

TEST(HostArrayTest, Int8WidensWithoutOverflow) {
  // 10 M ones as int8 sum far past int8 (and int32 would hold, but int64
  // is the declared R).
  const auto a = HostArray::make(CaseId::kC2, 10'000'000, Pattern::kOnes, 1);
  EXPECT_EQ(a.serial_sum().i, 10'000'000);
}

TEST(HostArrayTest, C1WrapsAtInt32) {
  // 2^31 ones in int32 wraps to INT32_MIN. Too many elements to
  // materialise; emulate with chunk combine semantics instead.
  const auto wrapped = HostArray::combine(
      CaseId::kC1, SumValue::of_int(0x7FFFFFFF), SumValue::of_int(1));
  EXPECT_EQ(wrapped.i, std::numeric_limits<std::int32_t>::min());
}

TEST(HostArrayTest, CombineC2IsPlainInt64) {
  const auto s = HostArray::combine(CaseId::kC2, SumValue::of_int(1LL << 40),
                                    SumValue::of_int(5));
  EXPECT_EQ(s.i, (1LL << 40) + 5);
}

TEST(HostArrayTest, CombineC3RoundsToFloat) {
  // 2^24 + 1 is not representable in float32.
  const auto s = HostArray::combine(CaseId::kC3,
                                    SumValue::of_float(16777216.0),
                                    SumValue::of_float(1.0));
  EXPECT_DOUBLE_EQ(s.d, 16777216.0);
}

TEST(HostArrayTest, CombineC4KeepsDoublePrecision) {
  const auto s = HostArray::combine(CaseId::kC4,
                                    SumValue::of_float(16777216.0),
                                    SumValue::of_float(1.0));
  EXPECT_DOUBLE_EQ(s.d, 16777217.0);
}

TEST(HostArrayTest, ChunkedSumEqualsSerialForInts) {
  const auto a =
      HostArray::make(CaseId::kC1, 100'000, Pattern::kUniform, 3);
  const auto serial = a.serial_sum();
  for (std::int64_t chunks : {1, 2, 7, 64, 1000}) {
    EXPECT_EQ(a.chunked_sum(chunks).i, serial.i) << chunks;
  }
}

TEST(HostArrayTest, ChunkedSumEqualsSerialForInt8) {
  const auto a =
      HostArray::make(CaseId::kC2, 100'000, Pattern::kUniform, 3);
  EXPECT_EQ(a.chunked_sum(128).i, a.serial_sum().i);
}

TEST(HostArrayTest, ChunkedFloatSumIsCloseButMayDiffer) {
  const auto a =
      HostArray::make(CaseId::kC3, 1'000'000, Pattern::kUniform, 5);
  const auto serial = a.serial_sum();
  const auto chunked = a.chunked_sum(4096);
  // Reassociation changes the result slightly; both near n/2.
  EXPECT_NEAR(chunked.d / serial.d, 1.0, 1e-3);
  // The chunked sum is usually *more* accurate vs the exact value.
  EXPECT_NEAR(chunked.d, 500'000.0, 1000.0);
}

TEST(HostArrayTest, DoubleChunkedSumTight) {
  const auto a =
      HostArray::make(CaseId::kC4, 1'000'000, Pattern::kUniform, 5);
  EXPECT_NEAR(a.chunked_sum(1000).d / a.serial_sum().d, 1.0, 1e-12);
}

TEST(HostArrayTest, RangeSumPartitionsExactly) {
  const auto a =
      HostArray::make(CaseId::kC1, 10'000, Pattern::kUniform, 9);
  const auto whole = a.serial_sum();
  const auto left = a.range_sum(0, 5'000);
  const auto right = a.range_sum(5'000, 10'000);
  EXPECT_EQ(HostArray::combine(CaseId::kC1, left, right).i, whole.i);
}

TEST(HostArrayTest, RangeValidation) {
  const auto a = HostArray::make(CaseId::kC1, 100, Pattern::kOnes, 1);
  EXPECT_THROW(a.range_sum(-1, 10), Error);
  EXPECT_THROW(a.range_sum(50, 10), Error);
  EXPECT_THROW(a.range_sum(0, 101), Error);
  EXPECT_THROW(a.chunked_sum(0), Error);
}

TEST(HostArrayTest, SumValueMatches) {
  EXPECT_TRUE(SumValue::of_int(5).matches(SumValue::of_int(5), 0.0));
  EXPECT_FALSE(SumValue::of_int(5).matches(SumValue::of_int(6), 0.0));
  EXPECT_TRUE(SumValue::of_float(100.0).matches(SumValue::of_float(100.01),
                                                1e-3));
  EXPECT_FALSE(SumValue::of_float(100.0).matches(SumValue::of_float(101.0),
                                                 1e-4));
  EXPECT_FALSE(SumValue::of_int(5).matches(SumValue::of_float(5.0), 1.0));
}

TEST(HostArrayTest, BytesAccounting) {
  const auto a = HostArray::make(CaseId::kC4, 1000, Pattern::kOnes, 1);
  EXPECT_EQ(a.bytes(), 8000);
  EXPECT_EQ(a.elements(), 1000);
}

TEST(HostArrayTest, ToString) {
  EXPECT_EQ(SumValue::of_int(42).to_string(), "42");
  EXPECT_NE(SumValue::of_float(1.5).to_string().find("1.5"),
            std::string::npos);
}

}  // namespace
}  // namespace ghs::workload
