#include "ghs/telemetry/exporters.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace ghs::telemetry {
namespace {

// A tiny registry with one instrument of each kind, used by the golden
// tests below.
void populate(Registry& registry) {
  registry.counter("ghs_test_events_total", {}, "events processed").inc(3);
  registry.gauge("ghs_test_depth", {{"queue", "main"}}, "queue depth")
      .set(2.5);
  Histogram& h =
      registry.histogram("ghs_test_latency_ms", {1.0, 10.0}, {}, "latency");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
}

TEST(ExportersTest, PrometheusGolden) {
  Registry registry;
  populate(registry);
  std::ostringstream oss;
  write_prometheus(oss, registry);
  const std::string want =
      "# HELP ghs_test_depth queue depth\n"
      "# TYPE ghs_test_depth gauge\n"
      "ghs_test_depth{queue=\"main\"} 2.500000\n"
      "# HELP ghs_test_events_total events processed\n"
      "# TYPE ghs_test_events_total counter\n"
      "ghs_test_events_total 3\n"
      "# HELP ghs_test_latency_ms latency\n"
      "# TYPE ghs_test_latency_ms histogram\n"
      "ghs_test_latency_ms_bucket{le=\"1\"} 1\n"
      "ghs_test_latency_ms_bucket{le=\"10\"} 2\n"
      "ghs_test_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "ghs_test_latency_ms_sum 55.500000\n"
      "ghs_test_latency_ms_count 3\n";
  EXPECT_EQ(oss.str(), want);
}

TEST(ExportersTest, JsonSnapshotGolden) {
  Registry registry;
  populate(registry);
  std::ostringstream oss;
  write_json_snapshot(oss, registry);
  const std::string want =
      "{\"counters\":{\"ghs_test_events_total\":3},"
      "\"gauges\":{\"ghs_test_depth{queue=\\\"main\\\"}\":2.500000},"
      "\"histograms\":{\"ghs_test_latency_ms\":{\"count\":3,"
      "\"sum\":55.500000,\"buckets\":{\"1\":1,\"10\":2,\"+Inf\":3}}}}";
  EXPECT_EQ(oss.str(), want);
}

TEST(ExportersTest, IdenticalValuesGiveByteIdenticalSnapshots) {
  Registry a;
  Registry b;
  populate(a);
  populate(b);
  std::ostringstream oss_a;
  std::ostringstream oss_b;
  write_json_snapshot(oss_a, a);
  write_json_snapshot(oss_b, b);
  EXPECT_EQ(oss_a.str(), oss_b.str());
}

TEST(ExportersTest, VolatileInstrumentsAreSkippedByDefault) {
  Registry registry;
  registry.counter("stable_total").inc();
  registry.gauge("wall_seconds", {}, "", /*volatile_instrument=*/true)
      .set(123.456);
  std::ostringstream def;
  write_json_snapshot(def, registry);
  EXPECT_EQ(def.str().find("wall_seconds"), std::string::npos);
  std::ostringstream prom;
  write_prometheus(prom, registry);
  EXPECT_EQ(prom.str().find("wall_seconds"), std::string::npos);

  ExportOptions options;
  options.include_volatile = true;
  std::ostringstream all;
  write_json_snapshot(all, registry, options);
  EXPECT_NE(all.str().find("wall_seconds"), std::string::npos);
}

TEST(ExportersTest, TableReportsQuantiles) {
  Registry registry;
  Histogram& h = registry.histogram("h_ms", {1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);
  const auto table = to_table(registry);
  std::ostringstream oss;
  table.render(oss);
  const std::string text = oss.str();
  EXPECT_NE(text.find("h_ms"), std::string::npos);
  EXPECT_NE(text.find("count=100"), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p999="), std::string::npos);
}

TEST(ExportersTest, EmptyRegistryIsStillValidJson) {
  Registry registry;
  std::ostringstream oss;
  write_json_snapshot(oss, registry);
  EXPECT_EQ(oss.str(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace ghs::telemetry
