// End-to-end telemetry: a small serve workload with unified-memory tenants
// must light up instruments from every layer (sim, gpu, um, tuner, serve),
// and same-seed runs must export byte-identical JSON snapshots.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/telemetry/exporters.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"

namespace ghs {
namespace {

std::string run_workload(telemetry::Registry& registry,
                         telemetry::FlightRecorder& flight,
                         std::uint64_t seed) {
  const telemetry::Sink sink{&registry, &flight};

  serve::ServiceModelOptions model_options;
  model_options.telemetry = sink;
  serve::ServiceModel model(model_options);

  serve::OpenLoopOptions open;
  open.shape.min_log2_elements = 12;
  open.shape.max_log2_elements = 14;
  open.shape.um_fraction = 0.5;
  open.rate_hz = 50000.0;
  open.jobs = 24;
  open.seed = seed;

  serve::ServiceOptions options;
  options.telemetry = sink;
  serve::ReductionService service(serve::make_policy("bandwidth", model),
                                  model, options);
  service.submit_all(serve::open_loop_poisson(open));
  service.run();

  std::ostringstream oss;
  telemetry::write_json_snapshot(oss, registry);
  return oss.str();
}

TEST(ServeTelemetryTest, AllLayersReportNonZeroInstruments) {
  telemetry::Registry registry;
  telemetry::FlightRecorder flight;
  run_workload(registry, flight, 42);

  EXPECT_GT(registry.counter("ghs_sim_events_total").value(), 0);
  EXPECT_GT(registry.counter("ghs_gpu_kernels_total").value(), 0);
  EXPECT_GT(registry.counter("ghs_um_fault_migrations_total").value(), 0);
  EXPECT_GT(
      registry.counter("ghs_um_migrated_bytes_total", {{"dest", "hbm"}})
          .value(),
      0);
  EXPECT_GT(registry.counter("ghs_tuner_runs_total").value(), 0);
  EXPECT_GT(registry.counter("ghs_tuner_cache_misses_total").value(), 0);
  EXPECT_GT(registry.counter("ghs_serve_jobs_submitted_total").value(), 0);
  EXPECT_GT(registry.counter("ghs_serve_jobs_completed_total").value(), 0);
  EXPECT_GT(registry
                .counter("ghs_serve_launches_total", {{"device", "gpu"}})
                .value(),
            0);
  // The flight recorder saw structured events from more than one layer.
  bool saw_serve = false;
  bool saw_um = false;
  for (const auto& event : flight.events()) {
    if (event.layer == "serve") saw_serve = true;
    if (event.layer == "um") saw_um = true;
  }
  EXPECT_TRUE(saw_serve);
  EXPECT_TRUE(saw_um);
}

TEST(ServeTelemetryTest, SameSeedRunsSnapshotByteIdentical) {
  telemetry::Registry registry_a;
  telemetry::FlightRecorder flight_a;
  telemetry::Registry registry_b;
  telemetry::FlightRecorder flight_b;
  const std::string a = run_workload(registry_a, flight_a, 7);
  const std::string b = run_workload(registry_b, flight_b, 7);
  EXPECT_EQ(a, b);
  // And a different seed actually changes the numbers, so the equality
  // above is not vacuous.
  telemetry::Registry registry_c;
  telemetry::FlightRecorder flight_c;
  const std::string c = run_workload(registry_c, flight_c, 8);
  EXPECT_NE(a, c);
}

TEST(ServeTelemetryTest, NullSinkStillServes) {
  // The opt-in contract: with no sink wired anywhere, the same stack runs
  // untouched — no registry needed, no instruments, no crashes.
  serve::ServiceModel model;
  serve::OpenLoopOptions open;
  open.jobs = 4;
  serve::ReductionService service(serve::make_policy("fifo", model), model);
  service.submit_all(serve::open_loop_poisson(open));
  service.run();
  EXPECT_EQ(service.report().served, 4);
}

}  // namespace
}  // namespace ghs
