#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ghs/telemetry/exporters.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/util/error.hpp"

namespace ghs::telemetry {
namespace {

TEST(ExemplarsTest, LandInTheBucketTheValueFallsIn) {
  Registry registry;
  Histogram& h =
      registry.histogram("h_ms", {1.0, 10.0, 100.0}, {}, "latency");
  h.observe_exemplar(0.5, 0xa);    // bucket 0: le=1
  h.observe_exemplar(5.0, 0xb);    // bucket 1: le=10
  h.observe_exemplar(500.0, 0xc);  // bucket 3: +Inf
  EXPECT_EQ(h.exemplar(0).trace_id, 0xau);
  EXPECT_EQ(h.exemplar(0).value, 0.5);
  EXPECT_EQ(h.exemplar(1).trace_id, 0xbu);
  EXPECT_EQ(h.exemplar(2).trace_id, 0u);  // le=100: nothing landed there
  EXPECT_EQ(h.exemplar(3).trace_id, 0xcu);
  EXPECT_TRUE(h.has_exemplars());
  // The observation itself still counts like a plain observe().
  EXPECT_EQ(h.count(), 3);
}

TEST(ExemplarsTest, BoundaryValueGoesToItsLeBucket) {
  Registry registry;
  Histogram& h = registry.histogram("h_ms", {1.0, 10.0});
  // Prometheus buckets are `le` (less-or-equal): 1.0 belongs to le=1.
  h.observe_exemplar(1.0, 0xd);
  EXPECT_EQ(h.exemplar(0).trace_id, 0xdu);
  EXPECT_EQ(h.exemplar(1).trace_id, 0u);
}

TEST(ExemplarsTest, LastWriterWinsPerBucket) {
  Registry registry;
  Histogram& h = registry.histogram("h_ms", {1.0});
  h.observe_exemplar(0.25, 0x1);
  h.observe_exemplar(0.75, 0x2);
  EXPECT_EQ(h.exemplar(0).trace_id, 0x2u);
  EXPECT_EQ(h.exemplar(0).value, 0.75);
}

TEST(ExemplarsTest, ZeroTraceIdIsAPlainObserve) {
  Registry registry;
  Histogram& h = registry.histogram("h_ms", {1.0});
  h.observe_exemplar(0.5, 0);
  EXPECT_FALSE(h.has_exemplars());
  EXPECT_EQ(h.count(), 1);
}

TEST(ExemplarsTest, PrometheusExpositionCarriesOpenMetricsSuffix) {
  Registry registry;
  Histogram& h = registry.histogram("h_ms", {1.0, 10.0}, {}, "latency");
  h.observe_exemplar(5.0, 0xbeef);
  std::ostringstream oss;
  write_prometheus(oss, registry);
  const std::string text = oss.str();
  EXPECT_NE(text.find("h_ms_bucket{le=\"10\"} 1 "
                      "# {trace_id=\"000000000000beef\"} 5.000000"),
            std::string::npos);
  // Exemplar-free buckets keep the plain exposition line.
  EXPECT_NE(text.find("h_ms_bucket{le=\"1\"} 0\n"), std::string::npos);
}

TEST(ExemplarsTest, JsonSnapshotCarriesExemplarsObject) {
  Registry registry;
  Histogram& h = registry.histogram("h_ms", {1.0});
  h.observe_exemplar(0.5, 0xf);
  std::ostringstream oss;
  write_json_snapshot(oss, registry);
  EXPECT_NE(oss.str().find(
                "\"exemplars\":{\"1\":{\"trace_id\":\"000000000000000f\","
                "\"value\":0.500000}}"),
            std::string::npos);
}

TEST(ExemplarsTest, ExemplarFreeOutputIsByteIdenticalToPlainObserve) {
  // The exemplar feature must cost nothing when unused: a histogram fed
  // through observe() and one fed through observe_exemplar(value, 0)
  // export exactly the same bytes, in both formats.
  Registry plain;
  Registry exemplar_api;
  plain.histogram("h_ms", {1.0, 10.0}).observe(5.0);
  exemplar_api.histogram("h_ms", {1.0, 10.0}).observe_exemplar(5.0, 0);
  for (const bool json : {false, true}) {
    std::ostringstream a;
    std::ostringstream b;
    if (json) {
      write_json_snapshot(a, plain);
      write_json_snapshot(b, exemplar_api);
    } else {
      write_prometheus(a, plain);
      write_prometheus(b, exemplar_api);
    }
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(ExemplarsTest, IncludeExemplarsOptionStripsThem) {
  Registry registry;
  registry.histogram("h_ms", {1.0}).observe_exemplar(0.5, 0xf);
  ExportOptions options;
  options.include_exemplars = false;
  std::ostringstream prom;
  write_prometheus(prom, registry, options);
  EXPECT_EQ(prom.str().find("trace_id"), std::string::npos);
  std::ostringstream json;
  write_json_snapshot(json, registry, options);
  EXPECT_EQ(json.str().find("exemplars"), std::string::npos);
}

TEST(ExemplarsTest, ExemplarIndexOutOfRangeThrows) {
  Registry registry;
  Histogram& h = registry.histogram("h_ms", {1.0});
  EXPECT_THROW(h.exemplar(2), Error);
}

}  // namespace
}  // namespace ghs::telemetry
