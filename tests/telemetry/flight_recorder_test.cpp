#include "ghs/telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ghs::telemetry {
namespace {

TEST(FlightRecorderTest, KeepsEventsInOrder) {
  FlightRecorder recorder(8);
  recorder.record(100, "serve", "admit", "job 0");
  recorder.record(200, "gpu", "launch", "C1 x2");
  ASSERT_EQ(recorder.size(), 2u);
  const auto events = recorder.events();
  EXPECT_EQ(events[0].at, 100);
  EXPECT_EQ(events[0].layer, "serve");
  EXPECT_EQ(events[0].kind, "admit");
  EXPECT_EQ(events[0].detail, "job 0");
  EXPECT_EQ(events[1].layer, "gpu");
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST(FlightRecorderTest, RingDropsOldestFirst) {
  FlightRecorder recorder(3);
  for (int i = 0; i < 5; ++i) {
    recorder.record(i, "um", "migrate", std::to_string(i));
  }
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.total_recorded(), 5);
  EXPECT_EQ(recorder.dropped(), 2);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest surviving event is #2; order is oldest first.
  EXPECT_EQ(events[0].detail, "2");
  EXPECT_EQ(events[2].detail, "4");
}

TEST(FlightRecorderTest, DumpMentionsDrops) {
  FlightRecorder recorder(2);
  for (int i = 0; i < 3; ++i) recorder.record(i, "sim", "step");
  std::ostringstream oss;
  recorder.dump(oss);
  const std::string text = oss.str();
  EXPECT_NE(text.find("sim step"), std::string::npos);
  EXPECT_NE(text.find("2 events"), std::string::npos);
  EXPECT_NE(text.find("(1 older events dropped)"), std::string::npos);
}

TEST(FlightRecorderTest, ClearResetsEverything) {
  FlightRecorder recorder(4);
  recorder.record(0, "serve", "admit");
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.events().empty());
}

TEST(FlightRecorderTest, NullSafeHelperIsANoOp) {
  EXPECT_NO_THROW(record_event(nullptr, 0, "serve", "admit", "ignored"));
  FlightRecorder recorder(4);
  record_event(&recorder, 7, "tuner", "cache_miss", "C3");
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.events()[0].kind, "cache_miss");
}

}  // namespace
}  // namespace ghs::telemetry
