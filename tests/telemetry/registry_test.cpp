#include "ghs/telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ghs/util/error.hpp"

namespace ghs::telemetry {
namespace {

TEST(LabelsTest, SuffixSortsByKeyAndEscapes) {
  EXPECT_EQ(label_suffix({}), "");
  EXPECT_EQ(label_suffix({{"tier", "hbm"}}), "{tier=\"hbm\"}");
  // Key order in the input does not matter.
  EXPECT_EQ(label_suffix({{"b", "2"}, {"a", "1"}}), "{a=\"1\",b=\"2\"}");
  EXPECT_EQ(label_suffix({{"a", "1"}, {"b", "2"}}), "{a=\"1\",b=\"2\"}");
  // Values with quotes and backslashes are escaped Prometheus-style.
  EXPECT_EQ(label_suffix({{"k", "a\"b\\c"}}), "{k=\"a\\\"b\\\\c\"}");
}

TEST(RegistryTest, SameIdentityReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("ghs_test_total", {{"x", "1"}});
  Counter& b = registry.counter("ghs_test_total", {{"x", "1"}});
  Counter& c = registry.counter("ghs_test_total", {{"x", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  EXPECT_EQ(b.value(), 3);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, LabelOrderDoesNotSplitIdentity) {
  Registry registry;
  Gauge& a = registry.gauge("g", {{"b", "2"}, {"a", "1"}});
  Gauge& b = registry.gauge("g", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(RegistryTest, KindMismatchThrows) {
  Registry registry;
  registry.counter("ghs_test_total");
  EXPECT_THROW(registry.gauge("ghs_test_total"), Error);
  EXPECT_THROW(registry.histogram("ghs_test_total", {1.0}), Error);
}

TEST(RegistryTest, HistogramBoundMismatchThrows) {
  Registry registry;
  registry.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), Error);
}

TEST(RegistryTest, HistogramBoundsMustIncrease) {
  Registry registry;
  EXPECT_THROW(registry.histogram("bad", {}), Error);
  EXPECT_THROW(registry.histogram("bad", {2.0, 1.0}), Error);
  EXPECT_THROW(registry.histogram("bad", {1.0, 1.0}), Error);
}

TEST(RegistryTest, VisitOrderIsSorted) {
  Registry registry;
  registry.counter("zeta_total");
  registry.gauge("alpha");
  registry.counter("mid_total", {{"b", "2"}});
  registry.counter("mid_total", {{"a", "1"}});
  std::vector<std::string> seen;
  registry.visit([&](const Registry::View& view) {
    seen.push_back(view.name + view.labels);
  });
  const std::vector<std::string> want = {"alpha", "mid_total{a=\"1\"}",
                                         "mid_total{b=\"2\"}", "zeta_total"};
  EXPECT_EQ(seen, want);
}

// The concurrency contract: increments are exact, never lost. Run under
// -DGHS_SANITIZE=ON this also proves the registry lock and the atomics are
// race-free.
TEST(RegistryTest, ConcurrentCountersAreExact) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each thread resolves the instrument itself, racing get-or-create.
      Counter& counter = registry.counter("ghs_test_concurrent_total");
      Gauge& gauge = registry.gauge("ghs_test_concurrent_gauge");
      Histogram& histogram =
          registry.histogram("ghs_test_concurrent_hist", {0.5});
      for (int i = 0; i < kIncrements; ++i) {
        counter.inc();
        gauge.add(1.0);
        histogram.observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("ghs_test_concurrent_total").value(),
            kThreads * kIncrements);
  EXPECT_DOUBLE_EQ(registry.gauge("ghs_test_concurrent_gauge").value(),
                   kThreads * kIncrements);
  Histogram& histogram =
      registry.histogram("ghs_test_concurrent_hist", {0.5});
  EXPECT_EQ(histogram.count(), kThreads * kIncrements);
  EXPECT_EQ(histogram.bucket_count(0), kThreads * kIncrements / 2);
  EXPECT_EQ(histogram.bucket_count(1), kThreads * kIncrements / 2);
}

TEST(HistogramTest, BucketBoundariesUseLeSemantics) {
  Registry registry;
  Histogram& h = registry.histogram("h", {1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // == bound, still the le="1" bucket
  h.observe(1.5);   // <= 2
  h.observe(4.0);   // == last finite bound
  h.observe(100.0); // +Inf overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  const std::vector<std::int64_t> cumulative = {2, 3, 4, 5};
  EXPECT_EQ(h.cumulative_counts(), cumulative);
}

TEST(HistogramTest, QuantileInterpolatesInsideBucket) {
  Registry registry;
  Histogram& h = registry.histogram("h", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  // All mass in [0, 10]; the median interpolates inside that bucket.
  const double p50 = h.quantile(0.50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 10.0);
  // Values past the last finite bound clamp to it rather than inventing
  // an +Inf estimate.
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(SinkTest, BoolMeansAnyChannelEnabled) {
  EXPECT_FALSE(static_cast<bool>(Sink{}));
  Registry registry;
  FlightRecorder* flight = nullptr;
  EXPECT_TRUE(static_cast<bool>(Sink{&registry, flight}));
}

TEST(RegistryTest, DefaultLatencyBucketsAreIncreasing) {
  const auto buckets = default_latency_buckets_ms();
  ASSERT_GE(buckets.size(), 2u);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1], buckets[i]);
  }
}

}  // namespace
}  // namespace ghs::telemetry
