// Edge cases for the shared loadgen flag helpers in bench/scrape.hpp and
// bench/profile.hpp: flag validation is exit-2 (death tests), and the
// scrape/series plumbing must behave on degenerate runs (no sim time, an
// interval longer than the run).
#include "scrape.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ghs/sim/simulator.hpp"
#include "ghs/telemetry/registry.hpp"
#include "profile.hpp"

namespace ghs::bench {
namespace {

using ExitCode2 = testing::ExitedWithCode;

TEST(RequirePositiveTest, RejectsZeroAndNegative) {
  EXPECT_EXIT(require_positive("prog", "--jobs", 0), ExitCode2(2),
              "--jobs must be > 0");
  EXPECT_EXIT(require_positive("prog", "--rate", -1.5), ExitCode2(2),
              "--rate must be > 0");
  require_positive("prog", "--jobs", 1);  // survives
}

TEST(RequireFractionTest, RejectsOutOfRange) {
  EXPECT_EXIT(require_fraction("prog", "--trace-sample", -0.01), ExitCode2(2),
              "--trace-sample must be in \\[0, 1\\]");
  EXPECT_EXIT(require_fraction("prog", "--trace-sample", 1.5), ExitCode2(2),
              "--trace-sample must be in \\[0, 1\\]");
  require_fraction("prog", "--trace-sample", 0.0);  // boundaries survive
  require_fraction("prog", "--trace-sample", 1.0);
}

TEST(ScrapeSettingsTest, NegativeIntervalExits2) {
  EXPECT_EXIT(scrape_settings_or_exit("prog", -1, ""), ExitCode2(2),
              "--scrape-interval must be >= 0");
}

TEST(ScrapeSettingsTest, SeriesOutWithoutIntervalExits2) {
  EXPECT_EXIT(scrape_settings_or_exit("prog", 0, "/tmp/x.json"), ExitCode2(2),
              "--series-out requires --scrape-interval > 0");
}

TEST(ScrapeSettingsTest, ValidSettingsConvertToSimTime) {
  const auto settings = scrape_settings_or_exit("prog", 25, "");
  EXPECT_EQ(settings.interval, 25 * kMicrosecond);
  EXPECT_TRUE(settings.enabled());
  EXPECT_FALSE(scrape_settings_or_exit("prog", 0, "").enabled());
}

TEST(ProfileSettingsTest, NegativeIntervalExits2) {
  EXPECT_EXIT(profile_settings_or_exit("prog", -5, "", false), ExitCode2(2),
              "--profile-interval must be >= 0");
}

TEST(ProfileSettingsTest, ProfileOutWithoutIntervalExits2) {
  EXPECT_EXIT(profile_settings_or_exit("prog", 0, "/tmp/x.folded", false),
              ExitCode2(2),
              "--profile-out requires --profile-interval > 0");
}

TEST(ProfileSettingsTest, CostReportAloneEnablesAttributionOnly) {
  const auto settings = profile_settings_or_exit("prog", 0, "", true);
  EXPECT_TRUE(settings.enabled());
  EXPECT_FALSE(settings.sampling());
  const auto off = profile_settings_or_exit("prog", 0, "", false);
  EXPECT_FALSE(off.enabled());
}

TEST(ScraperEdgeTest, ZeroWorkRunSeesOnlyTheScrapersOwnTick) {
  // No workload events: the scraper's own first tick is the only thing
  // in the queue, so the run ends after one interval with the tick
  // sample plus finish()'s trailing sample — and every delta is zero
  // because start() baselined the pre-run count.
  sim::Simulator sim;
  telemetry::Registry registry;
  registry.counter("c").inc(3);
  timeseries::Tsdb store;
  timeseries::ScraperOptions options;
  options.interval = 10 * kMicrosecond;
  timeseries::Scraper scraper(sim, registry, store, options);
  scraper.start();
  sim.run();
  scraper.finish();
  const timeseries::Series* series = store.find("c");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->raw().size(), 2u);
  EXPECT_EQ(series->raw()[0].at, 10 * kMicrosecond);
  EXPECT_DOUBLE_EQ(series->total_sum(), 0.0);
}

TEST(ScraperEdgeTest, IntervalLongerThanRunStillCapturesTotals) {
  sim::Simulator sim;
  telemetry::Registry registry;
  auto& counter = registry.counter("c");
  sim.schedule_at(5 * kMicrosecond, [&] { counter.inc(7); });
  timeseries::Tsdb store;
  timeseries::ScraperOptions options;
  options.interval = 1000 * kMicrosecond;  // run lasts 5us
  timeseries::Scraper scraper(sim, registry, store, options);
  scraper.start();
  sim.run();
  scraper.finish();
  const timeseries::Series* series = store.find("c");
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->total_sum(), 7.0);
}

TEST(WriteSeriesFileTest, EmptyPathIsNoOp) {
  sim::Simulator sim;
  telemetry::Registry registry;
  timeseries::Tsdb store;
  timeseries::ScraperOptions options;
  options.interval = kMicrosecond;
  timeseries::Scraper scraper(sim, registry, store, options);
  scraper.start();
  sim.run();
  scraper.finish();
  ScrapeSettings settings;  // no series_path
  settings.interval = kMicrosecond;
  write_series_file("prog", settings, store, scraper);  // must not crash
}

TEST(WriteSeriesFileTest, ZeroScrapeRunWritesValidJson) {
  sim::Simulator sim;
  telemetry::Registry registry;
  registry.counter("c");
  timeseries::Tsdb store;
  timeseries::ScraperOptions options;
  options.interval = 10 * kMicrosecond;
  timeseries::Scraper scraper(sim, registry, store, options);
  scraper.start();
  sim.run();
  scraper.finish();
  const std::string path = testing::TempDir() + "ghs_scrape_zero.json";
  ScrapeSettings settings;
  settings.interval = options.interval;
  settings.series_path = path;
  write_series_file("prog", settings, store, scraper);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("ghs-series-v1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ghs::bench
