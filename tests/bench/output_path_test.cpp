// Edge cases for bench/output_path.hpp: the fail-fast path validation
// that every loadgen output flag funnels through.
#include "output_path.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace ghs::bench {
namespace {

using ExitCode2 = testing::ExitedWithCode;

TEST(RequireWritablePathTest, EmptyAndBareFilenamesPass) {
  require_writable_path("prog", "");
  require_writable_path("prog", "report.json");  // cwd, no parent to check
}

TEST(RequireWritablePathTest, ExistingDirectoryPasses) {
  require_writable_path("prog", testing::TempDir() + "out.json");
}

TEST(RequireWritablePathTest, MissingParentExits2) {
  const std::string path =
      testing::TempDir() + "ghs_no_such_dir/out.json";
  EXPECT_EXIT(require_writable_path("prog", path), ExitCode2(2),
              "directory");
}

TEST(RequireWritablePathTest, NestedMissingParentsExit2) {
  // Several missing levels: the check must fail on the first missing
  // ancestor, not only a missing leaf directory.
  const std::string path =
      testing::TempDir() + "ghs_missing_a/missing_b/missing_c/out.json";
  EXPECT_EXIT(require_writable_path("prog", path), ExitCode2(2),
              "directory");
}

TEST(OpenOutputTest, OpensAndWrites) {
  const std::string path = testing::TempDir() + "ghs_output_path_test.txt";
  {
    auto out = open_output_or_exit("prog", path);
    out << "ok";
  }
  std::ifstream in(path);
  std::string text;
  in >> text;
  EXPECT_EQ(text, "ok");
  std::remove(path.c_str());
}

TEST(OpenOutputTest, UnwritablePathExits2) {
  EXPECT_EXIT(
      open_output_or_exit("prog",
                          testing::TempDir() + "ghs_nodir/deep/out.txt"),
      ExitCode2(2), "");
}

}  // namespace
}  // namespace ghs::bench
