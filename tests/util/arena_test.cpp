#include "ghs/util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ghs/util/error.hpp"

namespace ghs::util {
namespace {

TEST(ArenaTest, ServesAlignedAllocations) {
  Arena arena;
  void* a = arena.allocate(1, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(32, 32);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 32, 0u);
  EXPECT_EQ(arena.bytes_served(), 1u + 8u + 32u);
}

TEST(ArenaTest, RejectsNonPowerOfTwoAlignment) {
  Arena arena;
  EXPECT_THROW(arena.allocate(8, 3), Error);
  EXPECT_THROW(arena.allocate(8, 0), Error);
}

TEST(ArenaTest, GrowsByChunks) {
  Arena arena(128);
  EXPECT_EQ(arena.chunk_count(), 0u);
  arena.allocate(64, 8);
  EXPECT_EQ(arena.chunk_count(), 1u);
  arena.allocate(64, 8);
  EXPECT_EQ(arena.chunk_count(), 1u);
  arena.allocate(64, 8);  // does not fit the first chunk
  EXPECT_EQ(arena.chunk_count(), 2u);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedChunk) {
  Arena arena(64);
  void* big = arena.allocate(1024, 16);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 1024u);
  std::memset(big, 0xAB, 1024);  // the whole block must be writable
}

TEST(ArenaTest, ResetReleasesEverything) {
  Arena arena(256);
  arena.allocate(200, 8);
  arena.allocate(200, 8);
  EXPECT_GT(arena.chunk_count(), 0u);
  arena.reset();
  EXPECT_EQ(arena.chunk_count(), 0u);
  EXPECT_EQ(arena.bytes_served(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(256);
  std::vector<unsigned char*> blocks;
  for (int i = 0; i < 100; ++i) {
    auto* p = static_cast<unsigned char*>(arena.allocate(16, 8));
    std::memset(p, i, 16);
    blocks.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 16; ++j) {
      ASSERT_EQ(blocks[static_cast<std::size_t>(i)][j], i);
    }
  }
}

struct Tracked {
  static int live;
  int value;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(PoolTest, MakeAndReleaseRunConstructorsAndDestructors) {
  Tracked::live = 0;
  Pool<Tracked> pool(4);
  Tracked* a = pool.make(7);
  EXPECT_EQ(a->value, 7);
  EXPECT_EQ(Tracked::live, 1);
  EXPECT_EQ(pool.live(), 1u);
  pool.release(a);
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolTest, RecyclesSlotsWithoutGrowingCapacity) {
  Pool<std::string> pool(8);
  std::string* first = pool.make("hello");
  pool.release(first);
  std::string* second = pool.make("world");
  EXPECT_EQ(second, first);  // the freed slot is reused
  EXPECT_EQ(*second, "world");
  EXPECT_EQ(pool.capacity(), 1u);
  pool.release(second);
}

TEST(PoolTest, SteadyStateChurnDoesNotGrowReservation) {
  Pool<std::uint64_t> pool(16);
  std::vector<std::uint64_t*> live;
  for (std::uint64_t i = 0; i < 64; ++i) live.push_back(pool.make(i));
  const std::size_t reserved = pool.bytes_reserved();
  const std::size_t capacity = pool.capacity();
  for (int round = 0; round < 50; ++round) {
    for (auto* p : live) pool.release(p);
    live.clear();
    for (std::uint64_t i = 0; i < 64; ++i) live.push_back(pool.make(i));
  }
  EXPECT_EQ(pool.bytes_reserved(), reserved);
  EXPECT_EQ(pool.capacity(), capacity);
  for (auto* p : live) pool.release(p);
}

TEST(PoolTest, ManyLiveObjectsKeepTheirValues) {
  Pool<std::uint64_t> pool(32);
  std::vector<std::uint64_t*> objects;
  for (std::uint64_t i = 0; i < 1000; ++i) objects.push_back(pool.make(i));
  EXPECT_EQ(pool.live(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(*objects[i], i);
  for (auto* p : objects) pool.release(p);
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace ghs::util
