#include "ghs/util/units.hpp"

#include <gtest/gtest.h>

namespace ghs {
namespace {

TEST(UnitsTest, TimeConstantsAreConsistent) {
  EXPECT_EQ(kNanosecond, 1000 * kPicosecond);
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(UnitsTest, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_EQ(from_seconds(0.0), 0);
}

TEST(UnitsTest, FromSecondsRejectsNegativeAndNan) {
  EXPECT_THROW(from_seconds(-1.0), Error);
  EXPECT_THROW(from_seconds(std::nan("")), Error);
}

TEST(UnitsTest, FromNanoseconds) {
  EXPECT_EQ(from_nanoseconds(1.0), kNanosecond);
  EXPECT_EQ(from_nanoseconds(0.5), 500);
}

TEST(UnitsTest, BandwidthGbpsRoundTrip) {
  const Bandwidth bw = Bandwidth::from_gbps(4022.7);
  EXPECT_DOUBLE_EQ(bw.gbps(), 4022.7);
  EXPECT_DOUBLE_EQ(bw.bytes_per_second, 4022.7e9);
}

TEST(UnitsTest, TransferTimeBasic) {
  // 1 GB at 1 GB/s = 1 second.
  EXPECT_EQ(transfer_time(1'000'000'000, Bandwidth::from_gbps(1.0)), kSecond);
}

TEST(UnitsTest, TransferTimeZeroBytesIsZero) {
  EXPECT_EQ(transfer_time(0, Bandwidth::from_gbps(1.0)), 0);
}

TEST(UnitsTest, TransferTimeNeverZeroForNonzeroBytes) {
  // One byte at an enormous rate still takes >= 1 ps.
  EXPECT_GE(transfer_time(1, Bandwidth::from_gbps(1e9)), 1);
}

TEST(UnitsTest, TransferTimeRejectsBadInput) {
  EXPECT_THROW(transfer_time(-1, Bandwidth::from_gbps(1.0)), Error);
  EXPECT_THROW(transfer_time(1, Bandwidth{0.0}), Error);
}

TEST(UnitsTest, AchievedBandwidthInvertsTransferTime) {
  const Bytes bytes = 4LL * 1000 * 1000 * 1000;
  const Bandwidth bw = Bandwidth::from_gbps(500.0);
  const SimTime t = transfer_time(bytes, bw);
  EXPECT_NEAR(achieved_bandwidth(bytes, t).gbps(), 500.0, 0.01);
}

TEST(UnitsTest, AchievedBandwidthRejectsZeroTime) {
  EXPECT_THROW(achieved_bandwidth(100, 0), Error);
}

TEST(UnitsTest, FormatTimePicksUnit) {
  EXPECT_EQ(format_time(500), "500.000 ps");
  EXPECT_EQ(format_time(1500), "1.500 ns");
  EXPECT_EQ(format_time(2 * kMicrosecond), "2.000 us");
  EXPECT_EQ(format_time(3 * kMillisecond), "3.000 ms");
  EXPECT_EQ(format_time(4 * kSecond), "4.000 s");
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(format_bytes(512), "512.000 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2.000 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.000 MiB");
  EXPECT_EQ(format_bytes(4 * kGiB), "4.000 GiB");
}

TEST(UnitsTest, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(Bandwidth::from_gbps(4022.7)), "4022.7 GB/s");
}

}  // namespace
}  // namespace ghs
