#include "ghs/util/error.hpp"

#include <gtest/gtest.h>

namespace ghs {
namespace {

TEST(ErrorTest, RequirePassesWhenConditionHolds) {
  EXPECT_NO_THROW(GHS_REQUIRE(1 + 1 == 2, "fine"));
}

TEST(ErrorTest, RequireThrowsGhsError) {
  EXPECT_THROW(GHS_REQUIRE(false, "boom"), Error);
}

TEST(ErrorTest, RequireMessageCarriesCondition) {
  try {
    GHS_REQUIRE(2 < 1, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("custom detail 42"), std::string::npos) << what;
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
  }
}

TEST(ErrorTest, CheckTagsInternalInvariant) {
  try {
    GHS_CHECK(false, "state " << 7);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("internal invariant"), std::string::npos) << what;
    EXPECT_NE(what.find("state 7"), std::string::npos) << what;
  }
}

TEST(ErrorTest, UnreachableAlwaysThrows) {
  EXPECT_THROW(GHS_UNREACHABLE("never here"), Error);
}

TEST(ErrorTest, MessageContainsFileLocation) {
  try {
    GHS_REQUIRE(false, "x");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("error_test.cpp"),
              std::string::npos);
  }
}

TEST(ErrorTest, ErrorIsARuntimeError) {
  EXPECT_THROW(GHS_REQUIRE(false, ""), std::runtime_error);
}

}  // namespace
}  // namespace ghs
