#include "ghs/util/cli.hpp"

#include <gtest/gtest.h>

#include <array>

#include "ghs/util/error.hpp"

namespace ghs {
namespace {

TEST(CliTest, DefaultsAreUsedWithoutArgs) {
  Cli cli("prog", "test");
  const auto* name = cli.add_string("name", "hello", "a string");
  const auto* count = cli.add_int("count", 7, "an int");
  const auto* ratio = cli.add_double("ratio", 0.5, "a double");
  const auto* flag = cli.add_flag("verbose", "a flag");
  const std::array<const char*, 1> argv = {"prog"};
  cli.parse(1, argv.data());
  EXPECT_EQ(*name, "hello");
  EXPECT_EQ(*count, 7);
  EXPECT_DOUBLE_EQ(*ratio, 0.5);
  EXPECT_FALSE(*flag);
}

TEST(CliTest, EqualsSyntax) {
  Cli cli("prog", "test");
  const auto* name = cli.add_string("case", "C1", "");
  const auto* iters = cli.add_int("iters", 200, "");
  const std::array<const char*, 3> argv = {"prog", "--case=C3",
                                           "--iters=25"};
  cli.parse(3, argv.data());
  EXPECT_EQ(*name, "C3");
  EXPECT_EQ(*iters, 25);
}

TEST(CliTest, SpaceSeparatedValue) {
  Cli cli("prog", "test");
  const auto* iters = cli.add_int("iters", 1, "");
  const std::array<const char*, 3> argv = {"prog", "--iters", "42"};
  cli.parse(3, argv.data());
  EXPECT_EQ(*iters, 42);
}

TEST(CliTest, FlagSyntax) {
  Cli cli("prog", "test");
  const auto* flag = cli.add_flag("csv", "");
  const std::array<const char*, 2> argv = {"prog", "--csv"};
  cli.parse(2, argv.data());
  EXPECT_TRUE(*flag);
}

TEST(CliTest, UnknownOptionThrows) {
  Cli cli("prog", "test");
  const std::array<const char*, 2> argv = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv.data()), Error);
}

TEST(CliTest, PositionalArgumentThrows) {
  Cli cli("prog", "test");
  const std::array<const char*, 2> argv = {"prog", "bare"};
  EXPECT_THROW(cli.parse(2, argv.data()), Error);
}

TEST(CliTest, BadIntegerThrows) {
  Cli cli("prog", "test");
  cli.add_int("iters", 1, "");
  const std::array<const char*, 2> argv = {"prog", "--iters=12x"};
  EXPECT_THROW(cli.parse(2, argv.data()), Error);
}

TEST(CliTest, BadDoubleThrows) {
  Cli cli("prog", "test");
  cli.add_double("p", 0.0, "");
  const std::array<const char*, 2> argv = {"prog", "--p=zero"};
  EXPECT_THROW(cli.parse(2, argv.data()), Error);
}

TEST(CliTest, FlagWithValueThrows) {
  Cli cli("prog", "test");
  cli.add_flag("csv", "");
  const std::array<const char*, 2> argv = {"prog", "--csv=1"};
  EXPECT_THROW(cli.parse(2, argv.data()), Error);
}

TEST(CliTest, MissingValueThrows) {
  Cli cli("prog", "test");
  cli.add_int("iters", 1, "");
  const std::array<const char*, 2> argv = {"prog", "--iters"};
  EXPECT_THROW(cli.parse(2, argv.data()), Error);
}

TEST(CliTest, DuplicateOptionRegistrationThrows) {
  Cli cli("prog", "test");
  cli.add_int("x", 1, "");
  EXPECT_THROW(cli.add_string("x", "", ""), Error);
}

TEST(CliTest, UsageMentionsOptionsAndDefaults) {
  Cli cli("prog", "my description");
  cli.add_int("iters", 200, "timing repetitions");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("my description"), std::string::npos);
  EXPECT_NE(usage.find("--iters"), std::string::npos);
  EXPECT_NE(usage.find("timing repetitions"), std::string::npos);
  EXPECT_NE(usage.find("200"), std::string::npos);
}

TEST(CliDeathTest, ParseOrExitPrintsUsageAndExits2OnUnknownOption) {
  // Entry points use parse_or_exit so a typo ends in a usage message and
  // exit status 2 — never an uncaught ghs::Error aborting via terminate.
  const auto attempt = [] {
    Cli cli("prog", "test");
    cli.add_int("iters", 1, "timing repetitions");
    const std::array<const char*, 2> argv = {"prog", "--nope"};
    cli.parse_or_exit(2, argv.data());
  };
  EXPECT_EXIT(attempt(), testing::ExitedWithCode(2), "unknown option --nope");
}

TEST(CliDeathTest, ParseOrExitAcceptsGoodCommandLines) {
  Cli cli("prog", "test");
  const auto* iters = cli.add_int("iters", 1, "");
  const std::array<const char*, 2> argv = {"prog", "--iters=9"};
  cli.parse_or_exit(2, argv.data());
  EXPECT_EQ(*iters, 9);
}

TEST(CliTest, NegativeNumbersParse) {
  Cli cli("prog", "test");
  const auto* x = cli.add_int("x", 0, "");
  const auto* y = cli.add_double("y", 0.0, "");
  const std::array<const char*, 3> argv = {"prog", "--x=-5", "--y=-0.25"};
  cli.parse(3, argv.data());
  EXPECT_EQ(*x, -5);
  EXPECT_DOUBLE_EQ(*y, -0.25);
}

}  // namespace
}  // namespace ghs
