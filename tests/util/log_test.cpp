#include "ghs/util/log.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LogTest, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LogTest, SetAndGet) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, ParseAllLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST_F(LogTest, ParseRejectsUnknown) {
  EXPECT_THROW(parse_log_level("loud"), Error);
}

TEST_F(LogTest, MacrosDoNotThrow) {
  set_log_level(LogLevel::kDebug);
  EXPECT_NO_THROW(GHS_DEBUG("debug " << 1));
  EXPECT_NO_THROW(GHS_INFO("info " << 2));
  EXPECT_NO_THROW(GHS_WARN("warn " << 3));
  EXPECT_NO_THROW(GHS_ERROR("error " << 4));
}

TEST_F(LogTest, SuppressedLevelSkipsStreaming) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return 1;
  };
  GHS_DEBUG("x " << count());
  EXPECT_EQ(evaluations, 0) << "message built despite suppressed level";
}

}  // namespace
}  // namespace ghs
