#include "ghs/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ghs {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(16), 16u);
  }
}

TEST(RngTest, NextBelowZeroBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ReasonableSpread) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) {
    seen.insert(rng.next_below(1u << 20));
  }
  // Collisions in a 2^20 space over 256 draws should be rare.
  EXPECT_GT(seen.size(), 250u);
}

TEST(RngTest, SplitMixAdvancesState) {
  std::uint64_t s = 5;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ghs
