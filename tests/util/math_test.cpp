#include "ghs/util/math.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace ghs {
namespace {

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div<std::int64_t>(4'194'304'000, 128), 32'768'000);
}

TEST(MathTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(65536));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_TRUE(is_pow2(std::int64_t{1} << 62));
}

TEST(MathTest, RoundUp) {
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
  EXPECT_EQ(round_up(1, 4), 4);
}

TEST(MathTest, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0);
  EXPECT_EQ(log2_pow2(2), 1);
  EXPECT_EQ(log2_pow2(128), 7);
  EXPECT_EQ(log2_pow2(65536), 16);
}

TEST(MathTest, Lerp) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 2.0, 0.3), 2.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 1.0), 10.0);
}

TEST(MathTest, RelativeDifference) {
  EXPECT_DOUBLE_EQ(relative_difference(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_difference(100.0, 101.0), 0.0099, 1e-4);
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(relative_difference(3.0, 4.0),
                   relative_difference(4.0, 3.0));
}

}  // namespace
}  // namespace ghs
