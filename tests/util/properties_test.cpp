#include "ghs/util/properties.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ghs/util/error.hpp"

namespace ghs {
namespace {

TEST(PropertiesTest, ParsesKeyValueLines) {
  const auto props = Properties::parse(
      "a = 1\n"
      "b.c = hello\n");
  EXPECT_EQ(props.size(), 2u);
  EXPECT_EQ(props.get_int("a").value(), 1);
  EXPECT_EQ(props.get_string("b.c").value(), "hello");
}

TEST(PropertiesTest, IgnoresCommentsAndBlankLines) {
  const auto props = Properties::parse(
      "# header comment\n"
      "\n"
      "x = 5   # trailing comment\n"
      "   \n");
  EXPECT_EQ(props.size(), 1u);
  EXPECT_EQ(props.get_int("x").value(), 5);
}

TEST(PropertiesTest, TrimsWhitespace) {
  const auto props = Properties::parse("  key   =   value with spaces  \n");
  EXPECT_EQ(props.get_string("key").value(), "value with spaces");
}

TEST(PropertiesTest, MissingKeysReturnNullopt) {
  const auto props = Properties::parse("a = 1\n");
  EXPECT_FALSE(props.get_string("missing").has_value());
  EXPECT_FALSE(props.get_double("missing").has_value());
  EXPECT_FALSE(props.contains("missing"));
  EXPECT_TRUE(props.contains("a"));
}

TEST(PropertiesTest, TypedGettersValidate) {
  const auto props = Properties::parse(
      "num = 42\n"
      "real = 2.5\n"
      "flag = true\n"
      "off = 0\n"
      "text = abc\n");
  EXPECT_EQ(props.get_int("num").value(), 42);
  EXPECT_DOUBLE_EQ(props.get_double("real").value(), 2.5);
  EXPECT_TRUE(props.get_bool("flag").value());
  EXPECT_FALSE(props.get_bool("off").value());
  EXPECT_THROW(props.get_int("text"), Error);
  EXPECT_THROW(props.get_double("text"), Error);
  EXPECT_THROW(props.get_bool("text"), Error);
  EXPECT_THROW(props.get_int("real"), Error);
}

TEST(PropertiesTest, MalformedLinesRejected) {
  EXPECT_THROW(Properties::parse("no equals sign\n"), Error);
  EXPECT_THROW(Properties::parse("= value\n"), Error);
  EXPECT_THROW(Properties::parse("dup = 1\ndup = 2\n"), Error);
}

TEST(PropertiesTest, KeysAreSorted) {
  const auto props = Properties::parse("z = 1\na = 2\nm = 3\n");
  const auto keys = props.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "m");
  EXPECT_EQ(keys[2], "z");
}

TEST(PropertiesTest, LoadFileRoundTrip) {
  const std::string path = "/tmp/ghsum_props_test.properties";
  {
    std::ofstream out(path);
    out << "from.file = 7\n";
  }
  const auto props = Properties::load_file(path);
  EXPECT_EQ(props.get_int("from.file").value(), 7);
  std::remove(path.c_str());
  EXPECT_THROW(Properties::load_file(path), Error);
}

}  // namespace
}  // namespace ghs
