#include "ghs/util/strings.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitPreservesEmptyTokens) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitNoDelimiter) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringsTest, JoinInvertsSplit) {
  const std::string text = "1,2,4,8,16,32";
  EXPECT_EQ(join(split(text, ','), ","), text);
}

TEST(StringsTest, JoinEmpty) { EXPECT_EQ(join({}, ","), ""); }

TEST(StringsTest, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
  EXPECT_EQ(format_fixed(0.9995, 3), "1.000");
}

TEST(StringsTest, FormatFixedRejectsBadDecimals) {
  EXPECT_THROW(format_fixed(1.0, -1), Error);
  EXPECT_THROW(format_fixed(1.0, 13), Error);
}

TEST(StringsTest, PadLeft) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(StringsTest, PadRight) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace ghs
