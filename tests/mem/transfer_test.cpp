#include "ghs/mem/transfer.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::mem {
namespace {

class TransferTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Topology topo{sim, TopologyConfig{}};
  TransferEngine engine{topo};
};

TEST_F(TransferTest, CopyIsLinkBound) {
  // 4.5 GB over the 450 GB/s C2C lane takes 10 ms (HBM and LPDDR are
  // wider, so the link binds).
  SimTime done = -1;
  engine.copy(4'500'000'000, RegionId::kLpddr, RegionId::kHbm,
              [&] { done = sim.now(); }, "h2d");
  sim.run();
  EXPECT_NEAR(static_cast<double>(done), 10e9, 1e7);
}

TEST_F(TransferTest, MigrationIsEngineBound) {
  // The migration engine (250 GB/s) is narrower than the link.
  SimTime done = -1;
  engine.migrate(2'500'000'000, RegionId::kLpddr, RegionId::kHbm,
                 [&] { done = sim.now(); }, "mig");
  sim.run();
  EXPECT_NEAR(static_cast<double>(done), 10e9, 1e7);
}

TEST_F(TransferTest, ZeroByteCopyCompletesInline) {
  bool called = false;
  engine.copy(0, RegionId::kLpddr, RegionId::kHbm, [&] { called = true; },
              "empty");
  EXPECT_TRUE(called);
  EXPECT_EQ(sim.now(), 0);
}

TEST_F(TransferTest, NegativeBytesRejected) {
  EXPECT_THROW(engine.copy(-1, RegionId::kLpddr, RegionId::kHbm, nullptr,
                           "bad"),
               Error);
}

TEST_F(TransferTest, StatsAccumulate) {
  engine.copy(100, RegionId::kLpddr, RegionId::kHbm, nullptr, "a");
  engine.migrate(200, RegionId::kHbm, RegionId::kLpddr, nullptr, "b");
  sim.run();
  EXPECT_EQ(engine.stats().copies, 2);
  EXPECT_EQ(engine.stats().bytes, 300);
}

TEST_F(TransferTest, ZeroByteCopyNotCounted) {
  engine.copy(0, RegionId::kLpddr, RegionId::kHbm, nullptr, "none");
  EXPECT_EQ(engine.stats().copies, 0);
}

TEST_F(TransferTest, ConcurrentCopiesShareTheLink) {
  SimTime done_a = -1;
  SimTime done_b = -1;
  engine.copy(450'000'000, RegionId::kLpddr, RegionId::kHbm,
              [&] { done_a = sim.now(); }, "a");
  engine.copy(450'000'000, RegionId::kLpddr, RegionId::kHbm,
              [&] { done_b = sim.now(); }, "b");
  sim.run();
  // Two 0.45 GB copies over a 450 GB/s lane: 2 ms total when shared.
  EXPECT_NEAR(static_cast<double>(done_a), 2e9, 1e7);
  EXPECT_NEAR(static_cast<double>(done_b), 2e9, 1e7);
}

TEST_F(TransferTest, OppositeDirectionsContendOnMemoriesNotLink) {
  SimTime done_up = -1;
  SimTime done_down = -1;
  engine.copy(450'000'000, RegionId::kLpddr, RegionId::kHbm,
              [&] { done_up = sim.now(); }, "up");
  engine.copy(450'000'000, RegionId::kHbm, RegionId::kLpddr,
              [&] { done_down = sim.now(); }, "down");
  sim.run();
  // Each direction has its own C2C lane, but both copies read and write
  // the two memories: LPDDR (500 GB/s) fair-shares at 250 GB/s per copy,
  // so each 0.45 GB copy takes 1.8 ms.
  EXPECT_NEAR(static_cast<double>(done_up), 1.8e9, 2e7);
  EXPECT_NEAR(static_cast<double>(done_down), 1.8e9, 2e7);
}

}  // namespace
}  // namespace ghs::mem
