#include "ghs/mem/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ghs/util/error.hpp"

namespace ghs::mem {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  TopologyConfig config;
  Topology topo{sim, config};

  static bool contains(const std::vector<sim::ResourceId>& path,
                       sim::ResourceId r) {
    return std::find(path.begin(), path.end(), r) != path.end();
  }
};

TEST_F(TopologyTest, DefaultCapacitiesMatchTestbed) {
  EXPECT_DOUBLE_EQ(topo.network().capacity(topo.hbm()).gbps(), 4022.7);
  EXPECT_DOUBLE_EQ(topo.network().capacity(topo.lpddr()).gbps(), 500.0);
  EXPECT_DOUBLE_EQ(topo.network().capacity(topo.c2c_to_gpu()).gbps(), 450.0);
  EXPECT_DOUBLE_EQ(topo.network().capacity(topo.c2c_to_cpu()).gbps(), 450.0);
}

TEST_F(TopologyTest, GpuLocalReadTouchesOnlyHbm) {
  const auto path = topo.gpu_read_path(RegionId::kHbm);
  EXPECT_EQ(path.size(), 1u);
  EXPECT_TRUE(contains(path, topo.hbm()));
}

TEST_F(TopologyTest, GpuRemoteReadCrossesLink) {
  const auto path = topo.gpu_read_path(RegionId::kLpddr);
  EXPECT_TRUE(contains(path, topo.lpddr()));
  EXPECT_TRUE(contains(path, topo.c2c_to_gpu()));
  EXPECT_FALSE(contains(path, topo.hbm()));
}

TEST_F(TopologyTest, CpuLocalReadTouchesOnlyLpddr) {
  const auto path = topo.cpu_read_path(RegionId::kLpddr);
  EXPECT_EQ(path.size(), 1u);
  EXPECT_TRUE(contains(path, topo.lpddr()));
}

TEST_F(TopologyTest, CpuRemoteReadCrossesLinkTowardCpu) {
  const auto path = topo.cpu_read_path(RegionId::kHbm);
  EXPECT_TRUE(contains(path, topo.hbm()));
  EXPECT_TRUE(contains(path, topo.c2c_to_cpu()));
  EXPECT_FALSE(contains(path, topo.c2c_to_gpu()));
}

TEST_F(TopologyTest, MigrationPathTouchesBothMemoriesAndEngine) {
  const auto up = topo.migration_path(RegionId::kLpddr, RegionId::kHbm);
  EXPECT_TRUE(contains(up, topo.lpddr()));
  EXPECT_TRUE(contains(up, topo.hbm()));
  EXPECT_TRUE(contains(up, topo.c2c_to_gpu()));
  EXPECT_TRUE(contains(up, topo.migration_engine()));

  const auto down = topo.migration_path(RegionId::kHbm, RegionId::kLpddr);
  EXPECT_TRUE(contains(down, topo.c2c_to_cpu()));
  EXPECT_TRUE(contains(down, topo.migration_engine()));
}

TEST_F(TopologyTest, MigrationWithinRegionRejected) {
  EXPECT_THROW(topo.migration_path(RegionId::kHbm, RegionId::kHbm), Error);
  EXPECT_THROW(topo.copy_path(RegionId::kLpddr, RegionId::kLpddr), Error);
}

TEST_F(TopologyTest, CopyPathSkipsMigrationEngine) {
  const auto path = topo.copy_path(RegionId::kLpddr, RegionId::kHbm);
  EXPECT_FALSE(contains(path, topo.migration_engine()));
  EXPECT_TRUE(contains(path, topo.c2c_to_gpu()));
}

TEST_F(TopologyTest, RegionNames) {
  EXPECT_STREQ(region_name(RegionId::kHbm), "HBM3");
  EXPECT_STREQ(region_name(RegionId::kLpddr), "LPDDR5X");
}

}  // namespace
}  // namespace ghs::mem
