#include "ghs/gpu/occupancy.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::gpu {
namespace {

TEST(OccupancyTest, ThreadLimitBindsResidency) {
  GpuConfig config;
  // 2048 threads per SM / 256-thread CTAs = 8 CTAs per SM.
  EXPECT_EQ(ctas_per_sm(config, 256), 8);
  // 128-thread CTAs would allow 16.
  EXPECT_EQ(ctas_per_sm(config, 128), 16);
}

TEST(OccupancyTest, CtaSlotLimitBinds) {
  GpuConfig config;
  // 32-thread CTAs: thread limit allows 64 but the CTA-slot limit is 32.
  EXPECT_EQ(ctas_per_sm(config, 32), 32);
}

TEST(OccupancyTest, WholeDeviceResidency) {
  GpuConfig config;
  EXPECT_EQ(resident_ctas(config, 256), 8LL * 132);
  EXPECT_EQ(resident_ctas(config, 128), 16LL * 132);
}

TEST(OccupancyTest, InvalidThreadCountsRejected) {
  GpuConfig config;
  EXPECT_THROW(ctas_per_sm(config, 0), Error);
  EXPECT_THROW(ctas_per_sm(config, 100), Error);  // not a warp multiple
  EXPECT_THROW(ctas_per_sm(config, 4096), Error);  // above SM capacity
}

TEST(OccupancyTest, RateCapGrowsWithV) {
  GpuConfig config;
  const double v1 = cta_rate_cap(config, 256, 1, 4);
  const double v2 = cta_rate_cap(config, 256, 2, 4);
  const double v4 = cta_rate_cap(config, 256, 4, 4);
  EXPECT_GT(v2, v1);
  EXPECT_GT(v4, v2);
}

TEST(OccupancyTest, RateCapSaturatesAtLsuDepth) {
  GpuConfig config;
  // With iteration_ilp = 2 and max outstanding 8, v = 4 already saturates.
  const double v4 = cta_rate_cap(config, 256, 4, 4);
  const double v8 = cta_rate_cap(config, 256, 8, 4);
  const double v32 = cta_rate_cap(config, 256, 32, 4);
  EXPECT_DOUBLE_EQ(v4, v8);
  EXPECT_DOUBLE_EQ(v8, v32);
}

TEST(OccupancyTest, RateCapScalesWithElementSize) {
  GpuConfig config;
  const double int8 = cta_rate_cap(config, 256, 32, 1);
  const double int32 = cta_rate_cap(config, 256, 32, 4);
  const double fp64 = cta_rate_cap(config, 256, 32, 8);
  EXPECT_DOUBLE_EQ(int32, 4.0 * int8);
  EXPECT_DOUBLE_EQ(fp64, 8.0 * int8);
}

TEST(OccupancyTest, RateCapScalesWithWarps) {
  GpuConfig config;
  EXPECT_DOUBLE_EQ(cta_rate_cap(config, 256, 4, 4),
                   2.0 * cta_rate_cap(config, 128, 4, 4));
}

TEST(OccupancyTest, RateCapMatchesClosedForm) {
  GpuConfig config;
  // 8 warps x min(8, 2*4)=8 loads x 32 lanes x 4 B / 450 ns.
  const double expected = 8.0 * 8.0 * 32.0 * 4.0 / 450e-9;
  EXPECT_NEAR(cta_rate_cap(config, 256, 4, 4), expected, expected * 1e-9);
}

TEST(OccupancyTest, RejectsBadLoopShape) {
  GpuConfig config;
  EXPECT_THROW(cta_rate_cap(config, 256, 0, 4), Error);
  EXPECT_THROW(cta_rate_cap(config, 256, 1, 0), Error);
}

}  // namespace
}  // namespace ghs::gpu
