#include "ghs/gpu/coalescing.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::gpu {
namespace {

WarpAccessPattern pattern(Bytes element_size, int v) {
  WarpAccessPattern p;
  p.element_size = element_size;
  p.v = v;
  return p;
}

TEST(CoalescingTest, UnitStrideInt32IsFullyCoalesced) {
  const auto p = pattern(4, 1);
  EXPECT_EQ(warp_load_span(p), 128);
  EXPECT_EQ(sectors_per_load(p), 4);  // 128 B / 32 B sectors
  EXPECT_DOUBLE_EQ(per_load_sector_efficiency(p), 1.0);
  EXPECT_DOUBLE_EQ(iteration_sector_efficiency(p), 1.0);
}

TEST(CoalescingTest, UnitStrideInt8SharesSectors) {
  const auto p = pattern(1, 1);
  EXPECT_EQ(warp_load_span(p), 32);
  EXPECT_EQ(sectors_per_load(p), 1);
  EXPECT_DOUBLE_EQ(per_load_sector_efficiency(p), 1.0);
}

TEST(CoalescingTest, StridedInt32LoadWastesSectors) {
  // V = 4: lanes 16 B apart; a 32 B sector holds 2 lanes' elements.
  const auto p = pattern(4, 4);
  EXPECT_EQ(warp_load_span(p), 4 + 31 * 16);
  EXPECT_EQ(sectors_per_load(p), 16);
  EXPECT_DOUBLE_EQ(per_load_sector_efficiency(p), 128.0 / (16 * 32));
}

TEST(CoalescingTest, WideStrideTouchesOneSectorPerLane) {
  // V = 32 int32: stride 128 B >= sector, 32 distinct sectors.
  const auto p = pattern(4, 32);
  EXPECT_EQ(sectors_per_load(p), 32);
  EXPECT_DOUBLE_EQ(per_load_sector_efficiency(p), 128.0 / (32 * 32));
}

TEST(CoalescingTest, IterationEfficiencyIsOneRegardlessOfV) {
  for (Bytes size : {Bytes{1}, Bytes{4}, Bytes{8}}) {
    for (int v : {1, 2, 4, 8, 16, 32}) {
      const auto p = pattern(size, v);
      EXPECT_DOUBLE_EQ(iteration_sector_efficiency(p), 1.0)
          << "size=" << size << " v=" << v;
    }
  }
}

TEST(CoalescingTest, IterationSectorsScaleWithV) {
  EXPECT_EQ(sectors_per_iteration(pattern(4, 1)), 4);
  EXPECT_EQ(sectors_per_iteration(pattern(4, 8)), 32);
  EXPECT_EQ(sectors_per_iteration(pattern(8, 4)), 32);
  EXPECT_EQ(sectors_per_iteration(pattern(1, 4)), 4);
}

TEST(CoalescingTest, DoublePrecisionUnitStride) {
  const auto p = pattern(8, 1);
  EXPECT_EQ(warp_load_span(p), 256);
  EXPECT_EQ(sectors_per_load(p), 8);
  EXPECT_DOUBLE_EQ(per_load_sector_efficiency(p), 1.0);
}

TEST(CoalescingTest, ValidationRejectsBadPatterns) {
  WarpAccessPattern p;
  p.v = 0;
  EXPECT_THROW(warp_load_span(p), Error);
  p = WarpAccessPattern{};
  p.element_size = 0;
  EXPECT_THROW(sectors_per_load(p), Error);
  p = WarpAccessPattern{};
  p.sector_bytes = 0;
  EXPECT_THROW(sectors_per_iteration(p), Error);
}

}  // namespace
}  // namespace ghs::gpu
