#include "ghs/gpu/device.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "ghs/gpu/occupancy.hpp"
#include "ghs/util/error.hpp"

namespace ghs::gpu {
namespace {

class GpuDeviceTest : public ::testing::Test {
 protected:
  GpuDeviceTest()
      : topo_(sim_, mem::TopologyConfig{}),
        engine_(topo_),
        um_(topo_, engine_, um::UmPolicy{}),
        device_(sim_, topo_, um_, GpuConfig{}) {}

  KernelDesc explicit_kernel(std::int64_t elements, std::int64_t grid,
                             int threads, int v, Bytes elem_size) {
    KernelDesc desc;
    desc.label = "test";
    desc.grid = grid;
    desc.threads_per_cta = threads;
    desc.elements = elements;
    desc.element_size = elem_size;
    desc.v = v;
    desc.combine = CombineClass::kNativeInt;
    desc.input = InputLocation::kDeviceBuffer;
    return desc;
  }

  KernelResult run(const KernelDesc& desc) {
    std::optional<KernelResult> result;
    device_.launch(desc, [&](const KernelResult& r) { result = r; });
    sim_.run();
    EXPECT_TRUE(result.has_value());
    return *result;
  }

  sim::Simulator sim_;
  mem::Topology topo_;
  mem::TransferEngine engine_;
  um::UmManager um_;
  GpuDevice device_;
};

TEST_F(GpuDeviceTest, KernelCompletesAndReportsBytes) {
  const auto result = run(explicit_kernel(1 << 24, 4096, 256, 4, 4));
  EXPECT_EQ(result.bytes, (1LL << 24) * 4);
  EXPECT_GT(result.duration(), 0);
  EXPECT_EQ(result.remote_bytes, 0);
}

TEST_F(GpuDeviceTest, BandwidthNeverExceedsStreamEfficiencyCap) {
  const auto result = run(explicit_kernel(1 << 26, 65536 / 4, 256, 4, 4));
  const double cap =
      device_.config().stream_efficiency(4) * 4022.7;
  EXPECT_LE(result.bandwidth().gbps(), cap + 1.0);
  // A saturating config should land close to the cap (launch latency and
  // the tail wave cost a couple of percent at this size).
  EXPECT_GT(result.bandwidth().gbps(), cap * 0.92);
}

TEST_F(GpuDeviceTest, BandwidthMonotoneInGridUntilSaturation) {
  double previous = 0.0;
  for (std::int64_t teams : {128, 512, 2048, 8192}) {
    const auto result = run(explicit_kernel(1 << 26, teams, 256, 1, 4));
    // Allow 1 % slack: wave quantisation makes the saturated region flat
    // rather than strictly increasing.
    EXPECT_GE(result.bandwidth().gbps(), previous * 0.99)
        << "teams=" << teams;
    previous = result.bandwidth().gbps();
  }
}

TEST_F(GpuDeviceTest, SmallGridIsLatencyBound) {
  // 128 CTAs of v1/int32: the MLP cap should bind well below peak.
  const auto result = run(explicit_kernel(1 << 26, 128, 256, 1, 4));
  const double cap_gbps =
      128.0 * cta_rate_cap(device_.config(), 256, 1, 4) / 1e9;
  EXPECT_LT(result.bandwidth().gbps(), cap_gbps * 1.05);
  EXPECT_GT(result.bandwidth().gbps(), cap_gbps * 0.5);
}

TEST_F(GpuDeviceTest, HugeGridIsCombineBound) {
  // Baseline-like: one element per thread. The serial combine unit should
  // dominate: duration >= grid * combine cost.
  const std::int64_t grid = 1 << 20;
  const auto result = run(explicit_kernel(grid * 128, grid, 128, 1, 4));
  const SimTime combine_floor =
      device_.config().combine_native_int * grid;
  EXPECT_GE(result.duration(), combine_floor);
  EXPECT_LE(result.duration(), combine_floor * 2);
}

TEST_F(GpuDeviceTest, FloatCombineSlowerThanIntForHugeGrids) {
  const std::int64_t grid = 1 << 20;
  auto desc = explicit_kernel(grid * 128, grid, 128, 1, 4);
  const auto int_result = run(desc);
  desc.combine = CombineClass::kFloatCas;
  const auto float_result = run(desc);
  EXPECT_GT(float_result.duration(), int_result.duration());
}

TEST_F(GpuDeviceTest, LaunchWhileBusyRejected) {
  const auto desc = explicit_kernel(1 << 20, 1024, 256, 1, 4);
  device_.launch(desc, nullptr);
  EXPECT_TRUE(device_.busy());
  EXPECT_THROW(device_.launch(desc, nullptr), Error);
  sim_.run();
  EXPECT_FALSE(device_.busy());
}

TEST_F(GpuDeviceTest, EmptyKernelsRejected) {
  auto desc = explicit_kernel(1 << 20, 0, 256, 1, 4);
  EXPECT_THROW(device_.launch(desc, nullptr), Error);
  desc = explicit_kernel(0, 16, 256, 1, 4);
  EXPECT_THROW(device_.launch(desc, nullptr), Error);
}

TEST_F(GpuDeviceTest, ManagedKernelReadsRemoteWhenColdAndMigrates) {
  const Bytes bytes = 64 * kMiB;
  const auto alloc = um_.allocate(bytes, mem::RegionId::kLpddr, "in");
  KernelDesc desc = explicit_kernel(bytes / 4, 4096, 256, 4, 4);
  desc.input = InputLocation::kManaged;
  desc.managed_alloc = alloc;
  const auto cold = run(desc);
  EXPECT_EQ(cold.remote_bytes, bytes);
  // Fault-eager default: after the first pass the pages live in HBM.
  EXPECT_EQ(um_.resident_bytes(alloc, mem::RegionId::kHbm), bytes);
  const auto warm = run(desc);
  EXPECT_EQ(warm.remote_bytes, 0);
  EXPECT_LT(warm.duration(), cold.duration());
}

TEST_F(GpuDeviceTest, ManagedWarmSlowerThanExplicit) {
  const Bytes bytes = 64 * kMiB;
  const auto alloc = um_.allocate(bytes, mem::RegionId::kHbm, "in");
  KernelDesc managed = explicit_kernel(bytes / 4, 8192, 256, 4, 4);
  managed.input = InputLocation::kManaged;
  managed.managed_alloc = alloc;
  const auto um_result = run(managed);
  const auto explicit_result =
      run(explicit_kernel(bytes / 4, 8192, 256, 4, 4));
  EXPECT_GT(um_result.duration(), explicit_result.duration());
}

TEST_F(GpuDeviceTest, StatsCountKernelsWavesCombines) {
  const auto before = device_.stats();
  run(explicit_kernel(1 << 22, 4224, 256, 1, 4));
  const auto& after = device_.stats();
  EXPECT_EQ(after.kernels_launched, before.kernels_launched + 1);
  // 4224 CTAs / 1056 resident = 4 waves.
  EXPECT_EQ(after.waves_executed, before.waves_executed + 4);
  EXPECT_EQ(after.combines_issued, before.combines_issued + 4224);
}

TEST_F(GpuDeviceTest, DeterministicAcrossIdenticalRuns) {
  const auto desc = explicit_kernel(1 << 24, 2048, 256, 4, 4);
  const auto a = run(desc);
  const auto b = run(desc);
  EXPECT_EQ(a.duration(), b.duration());
}

TEST_F(GpuDeviceTest, CombineStrategiesOrderAsExpectedAtHugeGrids) {
  const std::int64_t grid = 1 << 20;
  auto desc = explicit_kernel(grid * 128, grid, 128, 1, 4);

  desc.strategy = CombineStrategy::kAtomicPerCta;
  const auto per_cta = run(desc);
  desc.strategy = CombineStrategy::kAtomicPerWarp;
  const auto per_warp = run(desc);
  desc.strategy = CombineStrategy::kTwoKernel;
  const auto two_kernel = run(desc);

  // Per-warp issues 4x the combines of per-CTA (128 threads = 4 warps);
  // the two-kernel scheme avoids serialized combines entirely.
  EXPECT_GT(per_warp.duration(), per_cta.duration() * 3);
  EXPECT_LT(two_kernel.duration(), per_cta.duration() / 2);
}

TEST_F(GpuDeviceTest, CombineStrategiesTieAtTunedGrids) {
  auto desc = explicit_kernel(1 << 26, 16384, 256, 4, 4);
  desc.strategy = CombineStrategy::kAtomicPerCta;
  const auto per_cta = run(desc);
  desc.strategy = CombineStrategy::kTwoKernel;
  const auto two_kernel = run(desc);
  // Within a few percent: the input stream dominates; the second kernel
  // only adds a launch.
  EXPECT_NEAR(static_cast<double>(two_kernel.duration()) /
                  static_cast<double>(per_cta.duration()),
              1.0, 0.05);
}

TEST_F(GpuDeviceTest, TwoKernelIssuesNoSerializedCombines) {
  auto desc = explicit_kernel(1 << 22, 4096, 256, 4, 4);
  desc.strategy = CombineStrategy::kTwoKernel;
  const auto before = device_.stats().combines_issued;
  run(desc);
  EXPECT_EQ(device_.stats().combines_issued, before);
}

TEST_F(GpuDeviceTest, StrategyNames) {
  EXPECT_STREQ(combine_strategy_name(CombineStrategy::kAtomicPerCta),
               "atomic-per-cta");
  EXPECT_STREQ(combine_strategy_name(CombineStrategy::kAtomicPerWarp),
               "atomic-per-warp");
  EXPECT_STREQ(combine_strategy_name(CombineStrategy::kTwoKernel),
               "two-kernel");
}

TEST_F(GpuDeviceTest, Int8StreamsSlowerThanInt32AtSmallGrids) {
  // Same bytes, 1-byte elements: the per-load footprint is 4x narrower, so
  // at a latency-bound grid (128 CTAs) int8 reaches ~1/4 the bandwidth.
  const Bytes bytes = 256 * kMiB;
  const auto int32 = run(explicit_kernel(bytes / 4, 128, 256, 4, 4));
  const auto int8 = run(explicit_kernel(bytes, 128, 256, 4, 1));
  EXPECT_GT(int32.bandwidth().gbps(), int8.bandwidth().gbps() * 3.0);
  EXPECT_LT(int32.bandwidth().gbps(), int8.bandwidth().gbps() * 5.0);
}

}  // namespace
}  // namespace ghs::gpu
