// Output-path validation shared by the bench binaries (header-only: the
// loadgens do not link ghsum_bench_common).
//
// A typo'd --metrics-out/--series-out/--trace directory used to surface as
// a GHS_REQUIRE abort midway through (or after) the run; these helpers turn
// it into the same early "program: message" + exit(2) shape Cli uses for
// bad flags, before any simulation time is spent.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <system_error>

namespace ghs::bench {

/// Exits 2 with a Cli-style stderr message when `path` names a file in a
/// directory that does not exist. "" (feature off) and bare filenames
/// (current directory) pass. Call right after parse_or_exit, before the
/// run starts.
inline void require_writable_path(const std::string& program,
                                  const std::string& path) {
  if (path.empty()) return;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  if (!std::filesystem::is_directory(parent, ec)) {
    std::cerr << program << ": cannot write " << path << ": directory '"
              << parent.string() << "' does not exist\n";
    std::exit(2);
  }
}

/// Opens `path` for writing, exiting 2 Cli-style on failure.
inline std::ofstream open_output_or_exit(const std::string& program,
                                         const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << program << ": cannot write " << path << "\n";
    std::exit(2);
  }
  return out;
}

}  // namespace ghs::bench
