// Reproduces Fig. 2b: optimized-kernel (teams 65536, V=4 or 32) CPU+GPU
// co-execution in UM mode with the input array allocated at A1.
#include "um_bench.hpp"

int main(int argc, char** argv) {
  return ghs::bench::run_um_figure(
      "fig2b_um_a1_optimized", "Fig. 2b (optimized kernel, A1)",
      ghs::core::AllocSite::kA1, /*optimized=*/true,
      "highest speedups over GPU-only: 2.253 / 3.385 / 2.100 / 2.197 "
      "(avg ~2.484)",
      argc, argv);
}
