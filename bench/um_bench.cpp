#include "um_bench.hpp"

#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/chart.hpp"

namespace ghs::bench {

namespace {

core::UmSweepOptions to_um_options(const CommonOptions& options,
                                   core::AllocSite site, bool optimized) {
  core::UmSweepOptions um;
  um.config = options.config;
  um.site = site;
  um.optimized = optimized;
  um.iterations = options.iterations;
  um.elements = options.elements;
  um.telemetry = options.telemetry();
  return um;
}

}  // namespace

int run_um_figure(const std::string& program, const std::string& figure_name,
                  core::AllocSite site, bool optimized,
                  const std::string& paper_note, int argc,
                  const char* const* argv) {
  CommonCli common(program,
                   figure_name + ": UM co-execution bandwidth vs CPU part",
                   /*default_iterations=*/200);
  const auto* chart = common.cli().add_flag("chart", "render an ASCII chart");
  const auto options = common.parse(argc, argv);

  const auto figure =
      core::um_figure(options.cases, to_um_options(options, site, optimized));
  if (options.csv) {
    figure.render_csv(std::cout);
  } else {
    std::cout << figure_name << ":\n";
    figure.render(std::cout);
    if (*chart) {
      stats::render_chart(figure, std::cout);
    }
    print_paper_reference(options.csv, paper_note);
  }
  write_metrics(options);
  return 0;
}

int run_um_speedup(const std::string& program,
                   const std::string& figure_name, core::AllocSite site,
                   const std::string& paper_note, int argc,
                   const char* const* argv) {
  CommonCli common(program,
                   figure_name + ": optimized-over-baseline speedup vs CPU "
                                 "part in UM mode",
                   /*default_iterations=*/200);
  const auto options = common.parse(argc, argv);

  const auto baseline = core::um_figure(
      options.cases, to_um_options(options, site, /*optimized=*/false));
  const auto optimized = core::um_figure(
      options.cases, to_um_options(options, site, /*optimized=*/true));
  const auto ratio = core::speedup_figure(baseline, optimized, figure_name);
  if (options.csv) {
    ratio.render_csv(std::cout);
  } else {
    std::cout << figure_name << ":\n";
    ratio.render(std::cout);
    print_paper_reference(options.csv, paper_note);
  }
  write_metrics(options);
  return 0;
}

}  // namespace ghs::bench
