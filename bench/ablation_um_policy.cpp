// Ablation: the unified-memory migration policy. Re-runs the optimized
// C1 co-execution sweep (both allocation sites) under fault-eager
// first-touch migration (the GH default the paper observes), delayed
// access-counter migration with several thresholds, and no migration at
// all, reporting the GPU-only level and the best co-run point for each.
// This isolates how much of the A1/A2 story is the migration policy.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "ablation_um_policy",
      "Co-execution outcome under alternative UM migration policies",
      /*default_iterations=*/50);
  const auto options = common.parse(argc, argv);

  struct Variant {
    std::string name;
    um::UmPolicy policy;
  };
  std::vector<Variant> variants;
  {
    um::UmPolicy p;  // defaults are the calibrated fault-eager policy
    variants.push_back({"fault-eager (GH default)", p});
  }
  for (int threshold : {4, 16, 64}) {
    um::UmPolicy p;
    p.mode = um::MigrationMode::kAccessCounter;
    p.gpu_access_threshold = threshold;
    std::string name = "access-counter, threshold ";
    name += std::to_string(threshold);
    variants.push_back({name, p});
  }
  {
    um::UmPolicy p;
    p.mode = um::MigrationMode::kNone;
    variants.push_back({"no migration", p});
  }

  stats::Table table({"Case", "Site", "Policy", "GPU-only GB/s",
                      "Best co-run GB/s", "Best speedup"});
  for (workload::CaseId case_id : options.cases) {
    for (core::AllocSite site :
         {core::AllocSite::kA1, core::AllocSite::kA2}) {
      for (const auto& variant : variants) {
        core::UmSweepOptions um_opts;
        um_opts.config = options.config;
        um_opts.site = site;
        um_opts.optimized = true;
        um_opts.iterations = options.iterations;
        um_opts.elements = options.elements;
        um_opts.config.um = variant.policy;
        const auto result = core::um_sweep_case(case_id, um_opts);
        double best = 0.0;
        for (const auto& point : result.points) {
          best = std::max(best, point.bandwidth.gbps());
        }
        const double gpu_only = result.at(0.0).bandwidth.gbps();
        table.add_row({workload::case_spec(case_id).name,
                       core::alloc_site_name(site), variant.name,
                       format_fixed(gpu_only, 0), format_fixed(best, 0),
                       format_fixed(best / gpu_only, 3)});
      }
    }
  }

  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "UM-policy ablation (optimized kernel):\n";
    table.render(std::cout);
    bench::print_paper_reference(
        options.csv,
        "fault-eager migration + allocation site reproduce the paper's "
        "A1 ~2.48x vs A2 ~1.07x split");
  }
  return 0;
}
