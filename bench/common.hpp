// Shared CLI plumbing for the figure/table bench binaries.
//
// Every bench accepts:
//   --cases=all|C1|C2|C3|C4[,..]  cases to run
//   --iters=N                     timed repetitions (Listing 6/8's N)
//   --elements=M                  input size (0 = the paper's M per case)
//   --csv                         machine-readable output
// Defaults favour a quick full run of `for b in build/bench/*; do $b; done`;
// pass --iters=200 to execute the paper's exact protocol.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ghs/core/system_config.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/util/cli.hpp"
#include "ghs/workload/cases.hpp"

namespace ghs::bench {

struct CommonOptions {
  std::vector<workload::CaseId> cases;
  int iterations = 0;
  std::int64_t elements = 0;
  bool csv = false;
  /// GH200 defaults, or overrides from --config=FILE (see
  /// ghs/core/config_io.hpp for the key list).
  core::SystemConfig config;
  /// --metrics-out destination ("" = telemetry off). The file receives the
  /// Prometheus exposition; the JSON snapshot lands at the same path with
  /// ".json" appended.
  std::string metrics_out;
  /// Live instruments when --metrics-out was given (shared, so copies of
  /// the options point at the same registry).
  std::shared_ptr<telemetry::Registry> registry;
  std::shared_ptr<telemetry::FlightRecorder> flight;

  /// The sink to hand to SweepOptions/ServiceOptions/...; all-null when
  /// telemetry is off.
  telemetry::Sink telemetry() const {
    return telemetry::Sink{registry.get(), flight.get()};
  }
};

class CommonCli {
 public:
  CommonCli(std::string program, std::string description,
            int default_iterations);

  /// Registers the shared options; callers may add more before parse().
  Cli& cli() { return cli_; }

  CommonOptions parse(int argc, const char* const* argv);

 private:
  Cli cli_;
  const std::string* cases_;
  const long long* iters_;
  const long long* elements_;
  const bool* csv_;
  const std::string* config_;
  const std::string* metrics_out_;
};

/// Writes the Prometheus exposition to options.metrics_out and the JSON
/// snapshot to options.metrics_out + ".json". No-op when --metrics-out was
/// not given. Snapshots exclude volatile instruments, so same-seed runs
/// produce byte-identical files.
void write_metrics(const CommonOptions& options);

/// Prints the "paper reports ..." reference line benches emit under each
/// reproduced artefact (suppressed in CSV mode).
void print_paper_reference(bool csv, const std::string& text);

}  // namespace ghs::bench
