// Reproduces the prose statistics of Section IV.B: average best co-run
// speedups over GPU-only execution for both allocation sites, the
// A1-over-A2 co-run ratio, the CPU-only A1 penalty, and the Fig. 3/5
// speedup ranges. Runs all four UM sweeps for every selected case.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "summary_stats",
      "Section IV.B prose statistics from the four UM co-execution sweeps",
      /*default_iterations=*/200);
  const auto options = common.parse(argc, argv);

  core::UmSweepOptions um;
  um.config = options.config;
  um.iterations = options.iterations;
  um.elements = options.elements;
  const auto set = core::run_um_experiments(options.cases, um);
  const auto s = core::summarize_corun(set);

  stats::Table table({"Statistic", "Simulated", "Paper"});
  table.add_row({"avg best co-run speedup, baseline A1",
                 format_fixed(s.avg_best_speedup_baseline_a1, 3), "2.492"});
  table.add_row({"avg best co-run speedup, optimized A1",
                 format_fixed(s.avg_best_speedup_optimized_a1, 3), "2.484"});
  table.add_row({"avg best co-run speedup, baseline A2",
                 format_fixed(s.avg_best_speedup_baseline_a2, 3), "-"});
  table.add_row({"avg best co-run speedup, optimized A2",
                 format_fixed(s.avg_best_speedup_optimized_a2, 3), "1.067"});
  table.add_row({"optimized co-run, A1 over A2",
                 format_fixed(s.a1_over_a2_optimized, 3), "2.299"});
  table.add_row({"CPU-only, A2 over A1",
                 format_fixed(s.cpu_only_a2_over_a1, 3), "1.367"});
  table.add_row({"Fig.3 speedup min", format_fixed(s.fig3_speedup_min, 3),
                 "0.996"});
  table.add_row({"Fig.3 speedup max", format_fixed(s.fig3_speedup_max, 3),
                 "10.654"});
  table.add_row({"Fig.5 speedup min", format_fixed(s.fig5_speedup_min, 3),
                 "0.998"});
  table.add_row({"Fig.5 speedup max", format_fixed(s.fig5_speedup_max, 3),
                 "6.729"});

  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "Section IV.B summary statistics:\n";
    table.render(std::cout);
  }
  return 0;
}
