// Load generator for the ghs::cluster fleet layer.
//
// Synthesises the serve-layer mixed C1-C4 open-loop workload across N
// simulated GH200 nodes, shards it by tenant, routes it through a front
// door policy, and emits a JSON throughput/latency report:
//
//   $ ./bench/cluster_loadgen --nodes=4                   # least-loaded
//   $ ./bench/cluster_loadgen --router=all                # policy table
//   $ ./bench/cluster_loadgen --remote-fraction=0.5       # pay transfers
//   $ ./bench/cluster_loadgen --scaling --nodes=16        # 1 vs 16 nodes
//   $ ./bench/cluster_loadgen --plan=down.plan --fault-node=2 --slo
//   $ ./bench/cluster_loadgen --crash-plan=1@300us:2ms --heartbeat-us=100
//   $ ./bench/cluster_loadgen --drain-at=3@1ms                # graceful
//
// --rate is PER NODE: total offered load is rate * nodes, so --scaling
// compares a single node against a fleet at identical per-node load and
// reports the speedup and scaling efficiency the router achieves.
//
// Tenants are assigned by hashing job ids (no workload RNG is consumed,
// so the generated jobs stay byte-identical to serve_loadgen's at the
// same seed); --remote-fraction places that share of jobs' source arrays
// on the tenant's consistent-hash home node, which the hash router serves
// locally while least/p2c pay inter-node transfers for.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ghs/cluster/cluster.hpp"
#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/profile/profiler.hpp"
#include "ghs/profile/recorder.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/slo/monitor.hpp"
#include "ghs/telemetry/exporters.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/chrome_exporter.hpp"
#include "ghs/util/cli.hpp"
#include "ghs/util/error.hpp"
#include "ghs/util/rng.hpp"
#include "build_info.hpp"
#include "profile.hpp"
#include "scrape.hpp"

namespace {

using namespace ghs;

struct RunSettings {
  cluster::ClusterOptions cluster;
  serve::OpenLoopOptions open;  // rate_hz here is the TOTAL offered rate
  int tenants = 64;
  double remote_fraction = 0.0;
  fault::FaultPlan plan;
  std::uint64_t fault_seed = 7;
  std::string trace_path;
  double trace_sample = 1.0;
  std::vector<slo::Objective> slo_objectives;
  /// Sim-time metrics scraping (off unless --scrape-interval was given).
  /// Per-node series fall out of the node="i" instrument labels.
  bench::ScrapeSettings scrape;
  /// Sim-time profiling / cost attribution (off unless a --profile-* or
  /// --cost-report flag was given, keeping artefacts byte-identical).
  bench::ProfileSettings profile;
};

/// Tenant identity and data placement, derived from job ids by the ring's
/// own mix so no workload randomness is consumed. The remote draw uses a
/// separate seeded stream: remote-fraction 0 leaves the jobs bit-equal to
/// the un-sharded workload.
void shard_workload(std::vector<serve::Job>& jobs,
                    const RunSettings& settings,
                    const cluster::HashRing& placement) {
  Rng remote_rng(settings.open.seed ^ 0xD15C0FF5E7ULL);
  for (auto& job : jobs) {
    job.tenant = static_cast<std::int64_t>(
        cluster::mix64(static_cast<std::uint64_t>(job.id)) %
        static_cast<std::uint64_t>(settings.tenants));
    if (settings.remote_fraction > 0.0 &&
        remote_rng.next_double() < settings.remote_fraction) {
      job.source_node =
          placement.owner(static_cast<std::uint64_t>(job.tenant));
    }
  }
}

cluster::ClusterReport run_router(cluster::RouterPolicy router,
                                  serve::ServiceModel& model,
                                  const RunSettings& settings,
                                  std::string* slo_json,
                                  std::string* timeline_json = nullptr,
                                  std::string* cost_json = nullptr) {
  trace::Tracer tracer;
  const bool tracing = !settings.trace_path.empty();
  tracer.set_sampler(
      trace::SamplerOptions{settings.trace_sample, settings.open.seed});

  cluster::ClusterOptions options = settings.cluster;
  options.router = router;
  // Fresh injector per run: every router faces the same (plan, seed)
  // chaos, so reports are comparable and byte-reproducible.
  fault::Injector injector(settings.plan, settings.fault_seed,
                           options.node.telemetry);
  if (!settings.plan.empty()) options.node.injector = &injector;
  const bool profiling = settings.profile.enabled();
  // Declared before the fleet so every node's recorder pointer stays
  // valid through the cluster's destructor.
  std::optional<profile::Recorder> recorder;
  if (profiling) {
    recorder.emplace();
    options.node.profile = &*recorder;
  }

  cluster::Cluster fleet(model, options, tracing ? &tracer : nullptr);
  const bool scraping = settings.scrape.enabled();
  timeseries::Tsdb store;
  std::optional<timeseries::Scraper> scraper;
  if (scraping) {
    timeseries::ScraperOptions scraper_options;
    scraper_options.interval = settings.scrape.interval;
    scraper.emplace(fleet.sim(), *options.node.telemetry.metrics, store,
                    scraper_options);
    scraper->start();
  }
  std::optional<profile::Profiler> profiler;
  if (settings.profile.sampling()) {
    profile::ProfilerOptions profiler_options;
    profiler_options.interval = settings.profile.interval;
    profiler.emplace(fleet.sim(), *recorder, profiler_options, &store);
    profiler->start();
  }
  std::vector<serve::Job> jobs = serve::open_loop_poisson(settings.open);
  // Placement follows the hash ring of THIS fleet size, so the hash
  // router serves remote-eligible jobs on their data's home node.
  shard_workload(jobs, settings, fleet.router().ring());
  fleet.submit_all(std::move(jobs));
  fleet.run();
  if (scraping) scraper->finish();
  if (profiler) profiler->finish();
  if (profiling) {
    // Fleet-wide reconciliation: per-node busy totals plus interconnect
    // and journal-replay bytes must match the attributed ledger.
    const auto check =
        recorder->ledger().check(fleet.conservation_totals());
    GHS_REQUIRE(check.ok(),
                "cost attribution leaked on router '"
                    << cluster::router_policy_name(router) << "'");
  }

  if (tracing) {
    // Last router run wins the file, matching serve_loadgen's policy
    // semantics.
    std::ofstream out(settings.trace_path);
    GHS_REQUIRE(out.good(), "cannot write " << settings.trace_path);
    trace::ChromeTraceExporter exporter(tracer);
    if (scraping) {
      bench::add_counter_tracks(exporter, store, settings.scrape.interval);
    }
    if (profiler) bench::add_profile_tracks(exporter, *profiler);
    exporter.write(out);
  }
  if (profiler) {
    // Like the trace, the last router run wins the collapsed-stack file.
    bench::write_profile_file("cluster_loadgen", settings.profile, *profiler);
  }
  if (settings.profile.cost_report && cost_json != nullptr) {
    std::ostringstream cost_os;
    recorder->ledger().write_json(cost_os, fleet.conservation_totals());
    *cost_json = cost_os.str();
    std::cerr << "[" << cluster::router_policy_name(router) << "] ";
    recorder->ledger().write_table(std::cerr, /*top_k=*/5);
  }
  if (scraping) {
    // Like the trace, the last router run wins the series file.
    bench::write_series_file("cluster_loadgen", settings.scrape, store,
                             *scraper);
    if (timeline_json != nullptr) {
      timeseries::TimelineOptions timeline_options;
      timeline_options.interval = settings.scrape.interval;
      timeline_options.queue_capacity = settings.cluster.node.queue_depth;
      const auto timeline = timeseries::build_timeline(store,
                                                       timeline_options);
      std::ostringstream timeline_os;
      timeline.write_json(timeline_os);
      *timeline_json = timeline_os.str();
      std::cerr << "[" << cluster::router_policy_name(router) << "] ";
      timeline.write_table(std::cerr);
    }
  }
  if (!settings.slo_objectives.empty() && slo_json != nullptr) {
    slo::Monitor monitor(settings.slo_objectives);
    fleet.feed_slo(monitor);
    std::ostringstream slo_os;
    monitor.evaluate().write_json(slo_os);
    *slo_json = slo_os.str();
  }
  return fleet.report();
}

std::vector<slo::Objective> default_objectives(double latency_ms) {
  std::vector<slo::Objective> objectives;
  objectives.push_back(slo::Objective{
      "availability", slo::ObjectiveKind::kAvailability, 0.999, 0.0});
  objectives.push_back(slo::Objective{
      "latency_p99", slo::ObjectiveKind::kLatencyQuantile, 0.99, latency_ms});
  return objectives;
}

void write_fixed(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  os << buf;
}

/// Parses a --drain-at schedule: `node@time` entries separated by commas
/// or whitespace, times in fault-plan duration grammar ("300us", "2ms").
std::vector<cluster::DrainSpec> parse_drains(const std::string& text) {
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  std::istringstream in(normalized);
  std::vector<cluster::DrainSpec> drains;
  std::string entry;
  while (in >> entry) {
    const auto at = entry.find('@');
    GHS_REQUIRE(at != std::string::npos && at > 0 && at + 1 < entry.size(),
                "drain spec '" << entry << "' must be node@time");
    cluster::DrainSpec spec;
    std::size_t used = 0;
    spec.node = std::stoi(entry.substr(0, at), &used);
    GHS_REQUIRE(used == at && spec.node >= 0,
                "drain spec '" << entry << "' needs a node index >= 0");
    spec.at = fault::parse_duration(entry.substr(at + 1));
    GHS_REQUIRE(spec.at > 0, "drain spec '" << entry
                                            << "' needs a positive time");
    drains.push_back(spec);
  }
  return drains;
}

/// Satellite validation: every node-index flag must name a node that
/// exists in the --nodes fleet, or the run exits 2 Cli-style.
void require_node_index(const std::string& program, const std::string& flag,
                        int node, int nodes) {
  if (node < 0 || node >= nodes) {
    std::cerr << program << ": " << flag << " targets node " << node
              << ", out of range for --nodes=" << nodes << " (valid: 0..."
              << nodes - 1 << ")\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("cluster_loadgen",
          "load generator for the sharded reduction-service fleet");
  const auto* nodes = cli.add_int("nodes", 4, "fleet size");
  const auto* router = cli.add_string(
      "router", "least", "passthrough|hash|least|p2c|all (all = the last 3)");
  const auto* policy =
      cli.add_string("policy", "fifo", "per-node scheduler: fifo|sjf|bandwidth");
  const auto* rate = cli.add_double(
      "rate", 100000.0, "PER-NODE arrival rate, jobs/s (total = rate*nodes)");
  const auto* jobs = cli.add_int("jobs", 2000, "total jobs across the fleet");
  const auto* depth = cli.add_int("depth", 64, "per-node admission depth");
  const auto* seed = cli.add_int("seed", 42, "workload RNG seed");
  const auto* tenants = cli.add_int("tenants", 64, "distinct tenant ids");
  const auto* remote_fraction = cli.add_double(
      "remote-fraction", 0.0,
      "fraction of jobs whose source array lives on the tenant's home node");
  const auto* min_log2 =
      cli.add_int("min-log2", 16, "smallest job, log2(elements)");
  const auto* max_log2 =
      cli.add_int("max-log2", 21, "largest job, log2(elements)");
  const auto* deadline_us =
      cli.add_int("deadline-us", 0, "relative deadline (0 = best effort)");
  const auto* um_fraction = cli.add_double(
      "um-fraction", 0.0, "fraction of jobs over unified-memory buffers");
  const auto* no_batch = cli.add_flag("no-batch", "disable launch batching");
  const auto* no_cpu =
      cli.add_flag("no-cpu", "GPU-only device pools (no Grace CPU)");
  const auto* no_spill =
      cli.add_flag("no-spill", "rejections stay local (no spill re-route)");
  const auto* no_steal =
      cli.add_flag("no-steal", "keep queued jobs on a breaker-open node");
  const auto* queue_kind = cli.add_string(
      "queue", "heap", "simulator event queue: heap|calendar");
  const auto* link_gbps = cli.add_double(
      "link-gbps", 450.0, "per-direction inter-node link bandwidth, GB/s");
  const auto* plan_path = cli.add_string(
      "plan", "", "fault-plan file driving chaos on --fault-node");
  const auto* fault_node =
      cli.add_int("fault-node", 0, "node the fault plan strikes");
  const auto* fault_seed =
      cli.add_int("fault-seed", 7, "fault-injector RNG seed");
  const auto* crash_plan = cli.add_string(
      "crash-plan", "",
      "whole-node crash schedule: node@at[:restart],... (e.g. 1@300us:2ms)");
  const auto* drain_at = cli.add_string(
      "drain-at", "", "graceful drain schedule: node@time,...");
  const auto* heartbeat_us = cli.add_int(
      "heartbeat-us", 0,
      "phi-accrual failure-detector heartbeat interval, microseconds "
      "(0 = detector off, crashes detected instantly)");
  const auto* scaling = cli.add_flag(
      "scaling",
      "also run a single node at the same per-node load and report speedup");
  const auto* trace_path =
      cli.add_string("trace", "", "write a Chrome-trace JSON timeline here");
  const auto* trace_sample = cli.add_double(
      "trace-sample", 1.0, "fraction of job traces kept (1.0 = all)");
  const auto* metrics_out = cli.add_string(
      "metrics-out", "",
      "write Prometheus metrics here (+ JSON snapshot at FILE.json)");
  const auto* slo = cli.add_flag(
      "slo", "evaluate SLOs per router and append an slo_report section");
  const auto* slo_latency_ms = cli.add_double(
      "slo-latency-ms", 1.0, "latency_p99 objective threshold, milliseconds");
  const auto* scrape_interval = cli.add_int(
      "scrape-interval", 0,
      "sim-time metrics scrape interval, microseconds (0 = off)");
  const auto* series_out = cli.add_string(
      "series-out", "",
      "write the scraped time-series dump here (.csv for CSV)");
  const auto* profile_interval = cli.add_int(
      "profile-interval", 0,
      "sim-time profiler sample interval, microseconds (0 = off)");
  const auto* profile_out = cli.add_string(
      "profile-out", "",
      "write collapsed stacks here (flamegraph.pl-compatible)");
  const auto* cost_report = cli.add_flag(
      "cost-report",
      "append per-tenant cost attribution to the report (+ stderr table)");
  cli.parse_or_exit(argc, argv);

  const auto scrape = bench::scrape_settings_or_exit(
      "cluster_loadgen", *scrape_interval, *series_out);
  const auto profile = bench::profile_settings_or_exit(
      "cluster_loadgen", *profile_interval, *profile_out, *cost_report);
  bench::require_fraction("cluster_loadgen", "--trace-sample", *trace_sample);
  bench::require_fraction("cluster_loadgen", "--um-fraction", *um_fraction);
  bench::require_fraction("cluster_loadgen", "--remote-fraction",
                          *remote_fraction);
  bench::require_writable_path("cluster_loadgen", *metrics_out);
  bench::require_writable_path("cluster_loadgen", *trace_path);

  if (*nodes < 1) {
    std::cerr << "cluster_loadgen: --nodes must be >= 1, got " << *nodes
              << "\n";
    return 2;
  }
  bench::require_positive("cluster_loadgen", "--jobs", *jobs);
  bench::require_positive("cluster_loadgen", "--rate", *rate);
  bench::require_positive("cluster_loadgen", "--depth", *depth);
  if (*heartbeat_us < 0) {
    std::cerr << "cluster_loadgen: --heartbeat-us must be >= 0, got "
              << *heartbeat_us << "\n";
    return 2;
  }
  require_node_index("cluster_loadgen", "--fault-node",
                     static_cast<int>(*fault_node), static_cast<int>(*nodes));
  fault::NodeCrashPlan crashes;
  std::vector<cluster::DrainSpec> drains;
  try {
    if (!crash_plan->empty()) crashes = fault::parse_crash_plan(*crash_plan);
    if (!drain_at->empty()) drains = parse_drains(*drain_at);
  } catch (const Error& error) {
    std::cerr << "cluster_loadgen: " << error.what() << "\n";
    return 2;
  }
  for (const auto& crash : crashes.crashes) {
    require_node_index("cluster_loadgen", "--crash-plan", crash.node,
                       static_cast<int>(*nodes));
  }
  for (const auto& drain : drains) {
    require_node_index("cluster_loadgen", "--drain-at", drain.node,
                       static_cast<int>(*nodes));
  }

  telemetry::Registry registry;
  telemetry::FlightRecorder flight;
  const bool metrics = !metrics_out->empty();
  const bool scraping = scrape.enabled();
  telemetry::Sink sink = (metrics || scraping)
                             ? telemetry::Sink{&registry, &flight}
                             : telemetry::Sink{};
  sink.timeline = scraping;

  RunSettings settings;
  settings.cluster.nodes = static_cast<int>(*nodes);
  settings.cluster.policy = *policy;
  settings.cluster.fault_node = static_cast<int>(*fault_node);
  settings.cluster.spill = !*no_spill;
  settings.cluster.steal = !*no_steal;
  settings.cluster.interconnect.link_bw = Bandwidth::from_gbps(*link_gbps);
  settings.cluster.node.queue_depth = static_cast<std::size_t>(*depth);
  settings.cluster.node.batching.enable = !*no_batch;
  settings.cluster.node.use_cpu = !*no_cpu;
  settings.cluster.node.telemetry = sink;
  const auto parsed_queue = sim::parse_queue_kind(*queue_kind);
  if (!parsed_queue) {
    std::cerr << "cluster_loadgen: unknown --queue value '" << *queue_kind
              << "' (expected heap or calendar)\n";
    return 2;
  }
  settings.cluster.node.sim.queue = *parsed_queue;
  settings.cluster.crash_plan = crashes;
  settings.cluster.drains = drains;
  if (*heartbeat_us > 0) {
    settings.cluster.health.enabled = true;
    settings.cluster.health.interval = *heartbeat_us * kMicrosecond;
  }
  const bool membership = !crashes.empty() || !drains.empty() ||
                          settings.cluster.health.enabled;
  if (membership && *router == "passthrough") {
    std::cerr << "cluster_loadgen: --crash-plan/--drain-at/--heartbeat-us "
                 "need a real fleet router, not passthrough\n";
    return 2;
  }

  serve::WorkloadShape shape;
  shape.min_log2_elements = static_cast<int>(*min_log2);
  shape.max_log2_elements = static_cast<int>(*max_log2);
  shape.deadline = *deadline_us * kMicrosecond;
  shape.um_fraction = *um_fraction;
  settings.open.shape = shape;
  settings.open.rate_hz = *rate * static_cast<double>(*nodes);
  settings.open.jobs = *jobs;
  settings.open.seed = static_cast<std::uint64_t>(*seed);

  settings.tenants = static_cast<int>(*tenants);
  settings.remote_fraction = *remote_fraction;
  if (!plan_path->empty()) settings.plan = fault::load_plan(*plan_path);
  settings.fault_seed = static_cast<std::uint64_t>(*fault_seed);
  settings.trace_path = *trace_path;
  settings.trace_sample = *trace_sample;
  settings.scrape = scrape;
  settings.profile = profile;
  if (*slo) settings.slo_objectives = default_objectives(*slo_latency_ms);

  std::vector<cluster::RouterPolicy> routers;
  if (*router == "all") {
    routers = {cluster::RouterPolicy::kHash, cluster::RouterPolicy::kLeast,
               cluster::RouterPolicy::kP2c};
  } else {
    routers = {cluster::parse_router_policy(*router)};
  }

  serve::ServiceModelOptions model_options;
  model_options.telemetry = sink;
  serve::ServiceModel model(model_options);

  std::ostringstream out;
  out << "{";
  bench::write_build_info(out);
  out << ",\"workload\":{\"nodes\":" << *nodes << ",\"policy\":\"" << *policy
      << "\",\"rate_hz_per_node\":" << *rate
      << ",\"jobs\":" << *jobs << ",\"seed\":" << *seed
      << ",\"tenants\":" << *tenants << ",\"remote_fraction\":"
      << *remote_fraction << ",\"min_log2_elements\":" << *min_log2
      << ",\"max_log2_elements\":" << *max_log2
      << ",\"deadline_us\":" << *deadline_us
      << ",\"um_fraction\":" << *um_fraction
      << ",\"queue_depth\":" << *depth << ",\"spill\":"
      << (settings.cluster.spill ? "true" : "false") << ",\"steal\":"
      << (settings.cluster.steal ? "true" : "false") << ",\"fault_plan\":\""
      << (plan_path->empty() ? "none" : *plan_path) << "\"";
  // Echoed only when scraping, so unscraped reports keep their exact bytes.
  if (scraping) out << ",\"scrape_interval_us\":" << *scrape_interval;
  if (profile.sampling()) {
    out << ",\"profile_interval_us\":" << *profile_interval;
  }
  // Membership knobs echoed only when the layer is on, for the same reason.
  if (membership) {
    out << ",\"crash_plan\":\""
        << (crashes.empty() ? "none" : fault::format_crash_plan(crashes))
        << "\",\"drains\":" << drains.size()
        << ",\"heartbeat_us\":" << *heartbeat_us;
  }
  out << "},\"routers\":[";

  std::vector<cluster::ClusterReport> reports(routers.size());
  std::vector<std::string> slo_reports(routers.size());
  std::vector<std::string> timeline_reports(routers.size());
  std::vector<std::string> cost_reports(routers.size());
  for (std::size_t i = 0; i < routers.size(); ++i) {
    reports[i] = run_router(routers[i], model, settings, &slo_reports[i],
                            scraping ? &timeline_reports[i] : nullptr,
                            profile.cost_report ? &cost_reports[i] : nullptr);
    if (i > 0) out << ",";
    reports[i].write_json(out);
  }
  out << "]";

  if (routers.size() > 1) {
    // Router-policy comparison: machine-readable here, human table below.
    out << ",\"comparison\":[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const auto& r = reports[i];
      if (i > 0) out << ",";
      out << "{\"router\":\"" << r.router << "\",\"jobs_per_s\":";
      write_fixed(out, r.throughput_jobs_per_s);
      out << ",\"gbps\":";
      write_fixed(out, r.throughput_gbps);
      out << ",\"p99_ms\":";
      write_fixed(out, r.latency.pct.p99);
      out << ",\"rejected\":" << r.rejected << ",\"remote_jobs\":"
          << r.remote_jobs << ",\"imbalance\":";
      write_fixed(out, r.imbalance);
      out << "}";
    }
    out << "]";
    std::fprintf(stderr, "%-8s %9s %9s %10s %10s %10s %8s %10s\n", "router",
                 "served", "rejected", "jobs/s", "p99_ms", "gbps", "remote",
                 "imbalance");
    for (const auto& r : reports) {
      std::fprintf(stderr,
                   "%-8s %9lld %9lld %10.0f %10.4f %10.2f %8lld %10.3f\n",
                   r.router.c_str(), static_cast<long long>(r.served),
                   static_cast<long long>(r.rejected),
                   r.throughput_jobs_per_s, r.latency.pct.p99,
                   r.throughput_gbps, static_cast<long long>(r.remote_jobs),
                   r.imbalance);
    }
  }

  if (*scaling) {
    // Single node at the same per-node offered load, same seed, a
    // proportional share of the jobs — the denominator of the fleet's
    // scaling efficiency. Not scraped: the fleet run owns the series file
    // and the timeline section.
    RunSettings single = settings;
    single.cluster.nodes = 1;
    single.cluster.fault_node = 0;
    // The scaling denominator stays crash-free: a node schedule written
    // for the fleet would be out of range (and meaningless) on one node.
    single.cluster.crash_plan = fault::NodeCrashPlan{};
    single.cluster.drains.clear();
    single.cluster.health = membership::HealthOptions{};
    single.cluster.enable_membership = false;
    single.open.rate_hz = *rate;
    single.open.jobs = std::max<std::int64_t>(*jobs / *nodes, 1);
    single.scrape = bench::ScrapeSettings{};
    // The fleet run owns the collapsed-stack file and the cost section;
    // the denominator still self-checks conservation when profiling.
    single.profile.profile_out.clear();
    const cluster::ClusterReport single_report = run_router(
        cluster::RouterPolicy::kLeast, model, single, nullptr);
    const cluster::ClusterReport& fleet = reports.front();
    const double speedup =
        single_report.throughput_jobs_per_s > 0.0
            ? fleet.throughput_jobs_per_s /
                  single_report.throughput_jobs_per_s
            : 0.0;
    const double p99_ratio = single_report.latency.pct.p99 > 0.0
                                 ? fleet.latency.pct.p99 /
                                       single_report.latency.pct.p99
                                 : 0.0;
    out << ",\"scaling\":{\"nodes\":" << *nodes << ",\"single_jobs_per_s\":";
    write_fixed(out, single_report.throughput_jobs_per_s);
    out << ",\"fleet_jobs_per_s\":";
    write_fixed(out, fleet.throughput_jobs_per_s);
    out << ",\"speedup\":";
    write_fixed(out, speedup);
    out << ",\"efficiency\":";
    write_fixed(out, speedup / static_cast<double>(*nodes));
    out << ",\"single_p99_ms\":";
    write_fixed(out, single_report.latency.pct.p99);
    out << ",\"fleet_p99_ms\":";
    write_fixed(out, fleet.latency.pct.p99);
    out << ",\"p99_ratio\":";
    write_fixed(out, p99_ratio);
    out << "}";
  }

  if (membership) {
    // Recovery accounting per router: detection latency, replay volume,
    // jobs recovered. Mirrors the per-report "membership" key, but in one
    // place for the perf gate and for humans.
    out << ",\"membership_report\":[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"router\":\"" << reports[i].router << "\",\"membership\":";
      reports[i].membership.write_json(out);
      out << "}";
    }
    out << "]";
    for (const auto& r : reports) {
      std::fprintf(stderr,
                   "[%s] membership: crashes=%lld restarts=%lld drains=%lld "
                   "replayed=%lld redirected=%lld dup=%lld replay_gb=%.3f "
                   "detect_mean_ms=%.3f detect_max_ms=%.3f\n",
                   r.router.c_str(),
                   static_cast<long long>(r.membership.crashes),
                   static_cast<long long>(r.membership.restarts),
                   static_cast<long long>(r.membership.drains),
                   static_cast<long long>(r.membership.replayed),
                   static_cast<long long>(r.membership.redirected),
                   static_cast<long long>(r.membership.duplicate_suppressed),
                   r.membership.replay_gb, r.membership.detection_mean_ms,
                   r.membership.detection_max_ms);
    }
  }

  if (*slo) {
    out << ",\"slo_report\":[";
    for (std::size_t i = 0; i < routers.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"router\":\"" << cluster::router_policy_name(routers[i])
          << "\",\"slo\":" << slo_reports[i] << "}";
    }
    out << "]";
  }
  if (scraping) {
    out << ",\"timeline_report\":[";
    for (std::size_t i = 0; i < routers.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"router\":\"" << cluster::router_policy_name(routers[i])
          << "\",\"timeline\":" << timeline_reports[i] << "}";
    }
    out << "]";
  }
  if (profile.cost_report) {
    out << ",\"cost_report\":[";
    for (std::size_t i = 0; i < routers.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"router\":\"" << cluster::router_policy_name(routers[i])
          << "\",\"cost\":" << cost_reports[i] << "}";
    }
    out << "]";
  }
  if (metrics) {
    out << ",\"metrics\":";
    telemetry::write_json_snapshot(out, registry);
  }
  out << "}";
  std::cout << out.str() << "\n";

  if (metrics) {
    {
      telemetry::ExportOptions prom_options;
      prom_options.include_volatile = true;
      std::ofstream prom(*metrics_out);
      GHS_REQUIRE(prom.good(), "cannot write " << *metrics_out);
      telemetry::write_prometheus(prom, registry, prom_options);
    }
    const std::string json_path = *metrics_out + ".json";
    std::ofstream snapshot(json_path);
    GHS_REQUIRE(snapshot.good(), "cannot write " << json_path);
    telemetry::write_json_snapshot(snapshot, registry);
    snapshot << "\n";
  }
  return 0;
}
