// Ablation: the thread_limit dimension the paper collapses. Section III.C
// notes "the parameter search space may be reduced by setting the OpenMP
// thread limit to 256"; this bench sweeps thread_limit x teams for each
// case and shows the 256 column sitting on the plateau — i.e. fixing it
// loses nothing, which is exactly why the paper could drop the dimension.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/series.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "ablation_thread_limit",
      "Bandwidth vs thread_limit: justifying the paper's fixed 256",
      /*default_iterations=*/5);
  const auto* v_opt = common.cli().add_int("v", 4, "elements per iteration");
  const auto options = common.parse(argc, argv);

  for (workload::CaseId case_id : options.cases) {
    const auto& spec = workload::case_spec(case_id);
    stats::Figure figure(std::string("thread_limit sweep, ") + spec.name,
                         "teams", "bandwidth GB/s");
    for (int thread_limit : {64, 128, 256, 512, 1024}) {
      auto& series =
          figure.add_series("T" + std::to_string(thread_limit));
      for (std::int64_t teams : {1024LL, 4096LL, 16384LL, 65536LL}) {
        core::Platform platform(options.config);
        core::GpuBenchmark bench;
        bench.case_id = case_id;
        bench.tuning = core::ReduceTuning{teams, thread_limit,
                                          static_cast<int>(*v_opt)};
        bench.elements = options.elements;
        bench.iterations = options.iterations;
        series.add(static_cast<double>(teams),
                   core::run_gpu_benchmark(platform, bench).bandwidth.gbps());
      }
    }
    if (options.csv) {
      figure.render_csv(std::cout);
    } else {
      figure.render(std::cout);
      bench::print_paper_reference(
          options.csv,
          "the paper fixes thread_limit at 256 to shrink the search space");
      std::cout << "\n";
    }
  }
  return 0;
}
