// Reproduces Fig. 4a: baseline-kernel co-execution in UM mode with the
// input array allocated at A2 (fresh for every p).
#include "um_bench.hpp"

int main(int argc, char** argv) {
  return ghs::bench::run_um_figure(
      "fig4a_um_a2_baseline", "Fig. 4a (baseline kernel, A2)",
      ghs::core::AllocSite::kA2, /*optimized=*/false,
      "distributing the reduction does not beat CPU-only execution",
      argc, argv);
}
