// Reproduction certification: runs the paper's headline experiments end to
// end and grades every published number against the simulation with
// explicit tolerances — PASS (within band), SHAPE (right ordering/shape,
// quantitative gap documented in EXPERIMENTS.md), FAIL otherwise. Exits
// non-zero if any PASS-graded metric regresses, making this binary a
// one-shot reproduction gate for CI.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

namespace {

struct Check {
  std::string metric;
  double simulated;
  double paper;
  double tolerance;  // relative; 0 = shape-graded
  bool shape_only = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "certify_reproduction",
      "grade the full reproduction against the paper's numbers",
      /*default_iterations=*/200);
  const auto options = common.parse(argc, argv);

  std::vector<Check> checks;

  // --- Table 1 ------------------------------------------------------------
  {
    core::SweepOptions sweep;
    sweep.iterations = 5;  // repetition-insensitive metric
    sweep.elements = options.elements;
    const auto rows = core::table1(workload::all_cases(), sweep);
    const double paper_base[] = {620, 172, 271, 526};
    const double paper_opt[] = {3795, 3596, 3790, 3833};
    const double paper_speedup[] = {6.120, 20.906, 13.985, 7.287};
    for (const auto& row : rows) {
      const auto c = static_cast<std::size_t>(row.case_id);
      const std::string name = workload::case_spec(row.case_id).name;
      checks.push_back({"Table1 " + name + " baseline GB/s",
                        row.baseline_gbps, paper_base[c], 0.05});
      checks.push_back({"Table1 " + name + " optimized GB/s",
                        row.optimized_gbps, paper_opt[c], 0.05});
      checks.push_back({"Table1 " + name + " speedup", row.speedup,
                        paper_speedup[c], 0.05});
    }
  }

  // --- Section IV (UM co-execution) ----------------------------------------
  {
    core::UmSweepOptions um;
    um.iterations = options.iterations;
    um.elements = options.elements;
    const auto set = core::run_um_experiments(options.cases, um);
    const auto s = core::summarize_corun(set);
    checks.push_back({"IV.B avg best co-run speedup, baseline A1",
                      s.avg_best_speedup_baseline_a1, 2.492, 0.15});
    checks.push_back({"IV.B avg best co-run speedup, optimized A1",
                      s.avg_best_speedup_optimized_a1, 2.484, 0.15});
    checks.push_back({"IV.B avg best co-run speedup, optimized A2",
                      s.avg_best_speedup_optimized_a2, 1.067, 0.10});
    checks.push_back({"IV.B optimized co-run A1/A2", s.a1_over_a2_optimized,
                      2.299, 0.10});
    checks.push_back({"IV.B CPU-only A2/A1", s.cpu_only_a2_over_a1, 1.367,
                      0.05});
    checks.push_back({"Fig.3 max speedup", s.fig3_speedup_max, 10.654, 0.0,
                      true});
    checks.push_back({"Fig.5 max speedup", s.fig5_speedup_max, 6.729, 0.0,
                      true});
    checks.push_back({"Fig.3 min speedup", s.fig3_speedup_min, 0.996, 0.05});
    checks.push_back({"Fig.5 min speedup", s.fig5_speedup_min, 0.998, 0.05});
  }

  stats::Table table({"Metric", "Simulated", "Paper", "Verdict"});
  int failures = 0;
  for (const auto& check : checks) {
    std::string verdict;
    if (check.shape_only) {
      // Shape-graded: same order of magnitude and same side of 1.
      const bool ok = check.simulated > 1.0 &&
                      check.simulated < 3.0 * check.paper;
      verdict = ok ? "SHAPE" : "FAIL";
      if (!ok) ++failures;
    } else {
      const double rel =
          std::abs(check.simulated - check.paper) / check.paper;
      if (rel <= check.tolerance) {
        verdict = "PASS";
      } else {
        verdict = "FAIL (" + format_fixed(100.0 * rel, 1) + "% off)";
        ++failures;
      }
    }
    table.add_row({check.metric, format_fixed(check.simulated, 3),
                   format_fixed(check.paper, 3), verdict});
  }

  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "Reproduction certification (tolerances in "
                 "EXPERIMENTS.md):\n";
    table.render(std::cout);
    std::cout << (failures == 0 ? "CERTIFIED: all graded metrics in band\n"
                                : "FAILED: see verdicts above\n");
  }
  return failures == 0 ? 0 : 1;
}
