// Shared --profile-interval / --profile-out / --cost-report wiring for
// the loadgen benches (header-only, same shape as scrape.hpp).
//
// Each loadgen parses the three flags, validates them through
// profile_settings_or_exit, attaches a profile::Recorder to its service
// (or cluster) when any are set, wraps the run in a Profiler when
// sampling, and funnels the results through the three consumers: the
// collapsed-stack file, the Perfetto profile tracks, and the cost_report
// JSON section + stderr top-K table. With all three flags at their
// defaults no recorder exists and every artefact keeps its exact bytes.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "ghs/profile/cost_ledger.hpp"
#include "ghs/profile/profiler.hpp"
#include "ghs/profile/recorder.hpp"
#include "ghs/trace/chrome_exporter.hpp"
#include "output_path.hpp"

namespace ghs::bench {

struct ProfileSettings {
  /// Simulated time between profiler samples; 0 = sampling off.
  SimTime interval = 0;
  /// --profile-out destination for collapsed stacks ("" = no dump).
  std::string profile_out;
  /// --cost-report: append the attribution ledger to the JSON report and
  /// print the top-K table on stderr.
  bool cost_report = false;

  /// Whether any profiling output was requested (a Recorder is needed).
  bool enabled() const { return sampling() || cost_report; }
  /// Whether the sampling profiler itself runs.
  bool sampling() const { return interval > 0; }
};

/// Validates the profile flags Cli-style (stderr + exit 2): the interval
/// must be non-negative, --profile-out needs --profile-interval, and the
/// output path's directory must exist.
inline ProfileSettings profile_settings_or_exit(
    const std::string& program, long long profile_interval_us,
    const std::string& profile_out, bool cost_report) {
  if (profile_interval_us < 0) {
    std::cerr << program << ": --profile-interval must be >= 0\n";
    std::exit(2);
  }
  if (!profile_out.empty() && profile_interval_us == 0) {
    std::cerr << program
              << ": --profile-out requires --profile-interval > 0\n";
    std::exit(2);
  }
  require_writable_path(program, profile_out);
  ProfileSettings settings;
  settings.interval = profile_interval_us * kMicrosecond;
  settings.profile_out = profile_out;
  settings.cost_report = cost_report;
  return settings;
}

/// Writes the collapsed-stack file for one profiled run. No-op without a
/// --profile-out path.
inline void write_profile_file(const std::string& program,
                               const ProfileSettings& settings,
                               const profile::Profiler& profiler) {
  if (settings.profile_out.empty()) return;
  auto out = open_output_or_exit(program, settings.profile_out);
  profiler.write_collapsed(out);
}

/// Merges the profiler's per-device slice tracks into a trace export
/// (no-op for an unprofiled run, keeping the file byte-identical).
inline void add_profile_tracks(trace::ChromeTraceExporter& exporter,
                               const profile::Profiler& profiler) {
  for (auto& track : profiler.tracks()) {
    exporter.add_profile_track(std::move(track));
  }
}

/// Appends `,"cost_report":{...}` to the report stream and prints the
/// top-K attribution table on stderr. Conservation is GHS_CHECKed inside
/// write_json: a leaky ledger aborts the loadgen instead of printing a
/// wrong bill.
inline void write_cost_report(std::ostream& os, const std::string& label,
                              const profile::CostLedger& ledger,
                              const profile::ConservationTotals& telemetry) {
  os << ",\"cost_report\":";
  ledger.write_json(os, telemetry);
  std::cerr << "[" << label << "] ";
  ledger.write_table(std::cerr, /*top_k=*/5);
}

}  // namespace ghs::bench
