// Reproduces Fig. 4b: optimized-kernel co-execution in UM mode with the
// input array allocated at A2.
#include "um_bench.hpp"

int main(int argc, char** argv) {
  return ghs::bench::run_um_figure(
      "fig4b_um_a2_optimized", "Fig. 4b (optimized kernel, A2)",
      ghs::core::AllocSite::kA2, /*optimized=*/true,
      "highest speedups over GPU-only: 1.139 / 1.062 / 1.050 / 1.017 "
      "(avg ~1.067)",
      argc, argv);
}
