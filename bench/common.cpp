#include "common.hpp"

#include <fstream>

#include "ghs/core/config_io.hpp"
#include "ghs/telemetry/exporters.hpp"
#include "ghs/util/error.hpp"
#include "ghs/util/strings.hpp"

namespace ghs::bench {

CommonCli::CommonCli(std::string program, std::string description,
                     int default_iterations)
    : cli_(std::move(program), std::move(description)) {
  cases_ = cli_.add_string("cases", "all", "all or comma list of C1..C4");
  iters_ = cli_.add_int("iters", default_iterations,
                        "timed repetitions per point (paper: 200)");
  elements_ = cli_.add_int(
      "elements", 0, "elements per case (0 = the paper's M)");
  csv_ = cli_.add_flag("csv", "emit CSV instead of tables");
  config_ = cli_.add_string(
      "config", "", "properties file overriding the GH200 system model");
  metrics_out_ = cli_.add_string(
      "metrics-out", "",
      "write Prometheus metrics here (+ JSON snapshot at FILE.json)");
}

CommonOptions CommonCli::parse(int argc, const char* const* argv) {
  cli_.parse_or_exit(argc, argv);
  CommonOptions options;
  if (*cases_ == "all") {
    options.cases = workload::all_cases();
  } else {
    for (const auto& token : split(*cases_, ',')) {
      options.cases.push_back(workload::parse_case(token));
    }
  }
  GHS_REQUIRE(*iters_ > 0, "--iters must be positive");
  GHS_REQUIRE(*elements_ >= 0, "--elements must be non-negative");
  options.iterations = static_cast<int>(*iters_);
  options.elements = *elements_;
  options.csv = *csv_;
  options.config = config_->empty() ? core::gh200_config()
                                    : core::load_system_config(*config_);
  options.metrics_out = *metrics_out_;
  if (!options.metrics_out.empty()) {
    options.registry = std::make_shared<telemetry::Registry>();
    options.flight = std::make_shared<telemetry::FlightRecorder>();
  }
  return options;
}

void write_metrics(const CommonOptions& options) {
  if (options.metrics_out.empty()) return;
  GHS_REQUIRE(options.registry != nullptr, "telemetry was never enabled");
  {
    std::ofstream out(options.metrics_out);
    GHS_REQUIRE(out.good(), "cannot write " << options.metrics_out);
    telemetry::write_prometheus(out, *options.registry);
  }
  const std::string json_path = options.metrics_out + ".json";
  std::ofstream out(json_path);
  GHS_REQUIRE(out.good(), "cannot write " << json_path);
  telemetry::write_json_snapshot(out, *options.registry);
  out << "\n";
}

void print_paper_reference(bool csv, const std::string& text) {
  if (csv) return;
  std::cout << "  [paper] " << text << "\n";
}

}  // namespace ghs::bench
