// Shared --scrape-interval / --series-out wiring for the loadgen benches
// (header-only: the loadgens do not link ghsum_bench_common).
//
// Each loadgen parses the two flags, validates them through
// scrape_settings_or_exit, hands a Tsdb + Scraper to its run, and then
// funnels the store through the three consumers: the series dump, the
// Perfetto counter tracks, and the timeline report section.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "ghs/timeseries/export.hpp"
#include "ghs/timeseries/report.hpp"
#include "ghs/timeseries/scraper.hpp"
#include "ghs/timeseries/tsdb.hpp"
#include "ghs/trace/chrome_exporter.hpp"
#include "output_path.hpp"

namespace ghs::bench {

struct ScrapeSettings {
  /// Simulated time between scrapes; 0 = scraping off.
  SimTime interval = 0;
  /// --series-out destination ("" = no dump). A ".csv" suffix selects the
  /// CSV flattening; anything else gets the ghs-series-v1 JSON.
  std::string series_path;

  bool enabled() const { return interval > 0; }
};

/// Validates a numeric flag Cli-style (stderr + exit 2): the loadgens
/// share this so `--jobs=0` or `--rate=-1` fails the same way everywhere.
template <typename T>
inline void require_positive(const std::string& program, const char* flag,
                             T value) {
  if (!(value > T{0})) {
    std::cerr << program << ": " << flag << " must be > 0, got " << value
              << "\n";
    std::exit(2);
  }
}

/// Validates a sampling-fraction flag Cli-style (stderr + exit 2): the
/// trace head sampler and friends take a probability, so anything outside
/// [0, 1] is a spelling mistake, not a configuration.
inline void require_fraction(const std::string& program, const char* flag,
                             double value) {
  if (!(value >= 0.0 && value <= 1.0)) {
    std::cerr << program << ": " << flag << " must be in [0, 1], got "
              << value << "\n";
    std::exit(2);
  }
}

/// Validates the scrape flags Cli-style (stderr + exit 2): --series-out
/// needs --scrape-interval, the interval must be non-negative, and the
/// series path's directory must exist.
inline ScrapeSettings scrape_settings_or_exit(const std::string& program,
                                              long long scrape_interval_us,
                                              const std::string& series_out) {
  if (scrape_interval_us < 0) {
    std::cerr << program << ": --scrape-interval must be >= 0\n";
    std::exit(2);
  }
  if (!series_out.empty() && scrape_interval_us == 0) {
    std::cerr << program
              << ": --series-out requires --scrape-interval > 0\n";
    std::exit(2);
  }
  require_writable_path(program, series_out);
  ScrapeSettings settings;
  settings.interval = scrape_interval_us * kMicrosecond;
  settings.series_path = series_out;
  return settings;
}

/// Writes the series dump for one completed scraped run. No-op without a
/// --series-out path.
inline void write_series_file(const std::string& program,
                              const ScrapeSettings& settings,
                              const timeseries::Tsdb& store,
                              const timeseries::Scraper& scraper) {
  if (settings.series_path.empty()) return;
  auto out = open_output_or_exit(program, settings.series_path);
  const timeseries::SeriesMeta meta{scraper.interval(), scraper.scrapes()};
  const std::string& path = settings.series_path;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    timeseries::write_series_csv(out, store, meta);
  } else {
    timeseries::write_series_json(out, store, meta);
    out << "\n";
  }
}

/// Merges the standard counter tracks into a trace export (no-op when the
/// store holds none of the tracked series, keeping the file byte-identical
/// to an unscraped run's).
inline void add_counter_tracks(trace::ChromeTraceExporter& exporter,
                               const timeseries::Tsdb& store,
                               SimTime interval) {
  for (auto& track : timeseries::counter_tracks(store, interval)) {
    exporter.add_counter_track(std::move(track));
  }
}

}  // namespace ghs::bench
