// Reproduces Fig. 3: speedup of the optimized co-run (Fig. 2b) over the
// baseline co-run (Fig. 2a) per CPU fraction, allocation site A1.
#include "um_bench.hpp"

int main(int argc, char** argv) {
  return ghs::bench::run_um_speedup(
      "fig3_um_a1_speedup", "Fig. 3 (optimized/baseline speedup, A1)",
      ghs::core::AllocSite::kA1,
      "speedup ranges 0.996..10.654; significant when the GPU part is at "
      "least 50% of the work",
      argc, argv);
}
