// Shared driver for the UM co-execution figure benches (Figs. 2a/2b/3/4a/
// 4b/5): runs the Listing 8 protocol sweeps and renders either a bandwidth
// figure or an optimized-over-baseline speedup figure.
#pragma once

#include <string>

#include "ghs/core/reduce.hpp"

namespace ghs::bench {

/// Bandwidth-vs-p figure (Figs. 2a, 2b, 4a, 4b).
int run_um_figure(const std::string& program, const std::string& figure_name,
                  core::AllocSite site, bool optimized,
                  const std::string& paper_note, int argc,
                  const char* const* argv);

/// Speedup figure: optimized sweep divided by baseline sweep (Figs. 3, 5).
int run_um_speedup(const std::string& program,
                   const std::string& figure_name, core::AllocSite site,
                   const std::string& paper_note, int argc,
                   const char* const* argv);

}  // namespace ghs::bench
