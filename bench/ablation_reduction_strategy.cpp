// Extension bench: the reduction-abstraction comparison the paper's
// conclusion defers to future work. Runs each case's *baseline-shaped*
// kernel (heuristic grid) and the optimized kernel under three combine
// strategies: the vendor's shared-memory tree + per-CTA atomic, a warp-
// shuffle + per-warp atomic, and a two-kernel (partials + fold) scheme.
// With huge heuristic grids the per-CTA/warp combine serializes and the
// two-kernel scheme wins; at tuned grids all three tie — quantifying how
// much of the "abstraction" question is really the grid-geometry question.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "ablation_reduction_strategy",
      "Baseline and tuned kernels under three combine abstractions",
      /*default_iterations=*/5);
  const auto options = common.parse(argc, argv);

  const gpu::CombineStrategy strategies[] = {
      gpu::CombineStrategy::kAtomicPerCta,
      gpu::CombineStrategy::kAtomicPerWarp,
      gpu::CombineStrategy::kTwoKernel,
  };

  stats::Table table({"Case", "Strategy", "Heuristic grid GB/s",
                      "Tuned grid GB/s"});
  for (workload::CaseId case_id : options.cases) {
    const auto& spec = workload::case_spec(case_id);
    const std::int64_t elements =
        options.elements > 0 ? options.elements : spec.paper_elements;
    for (auto strategy : strategies) {
      // Baseline shape (v=1, 128 threads) under the heuristic grid, with
      // the strategy swapped in.
      double heuristic_gbps;
      {
        core::Platform platform;
        const std::int64_t grid = platform.runtime().default_grid(elements);
        core::GpuBenchmark bench;
        bench.case_id = case_id;
        bench.tuning = core::ReduceTuning{grid, 128, 1, strategy};
        bench.elements = elements;
        bench.iterations = options.iterations;
        heuristic_gbps =
            core::run_gpu_benchmark(platform, bench).bandwidth.gbps();
      }
      double tuned_gbps;
      {
        core::Platform platform;
        core::ReduceTuning tuning = core::paper_best_tuning(case_id);
        tuning.strategy = strategy;
        core::GpuBenchmark bench;
        bench.case_id = case_id;
        bench.tuning = tuning;
        bench.elements = elements;
        bench.iterations = options.iterations;
        tuned_gbps =
            core::run_gpu_benchmark(platform, bench).bandwidth.gbps();
      }
      table.add_row({spec.name, gpu::combine_strategy_name(strategy),
                     format_fixed(heuristic_gbps, 0),
                     format_fixed(tuned_gbps, 0)});
    }
  }

  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "Reduction-strategy ablation:\n";
    table.render(std::cout);
    bench::print_paper_reference(
        options.csv,
        "future-work extension: abstraction choice matters only when the "
        "grid heuristic over-decomposes");
  }
  return 0;
}
