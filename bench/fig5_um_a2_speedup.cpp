// Reproduces Fig. 5: speedup of the optimized co-run (Fig. 4b) over the
// baseline co-run (Fig. 4a) per CPU fraction, allocation site A2.
#include "um_bench.hpp"

int main(int argc, char** argv) {
  return ghs::bench::run_um_speedup(
      "fig5_um_a2_speedup", "Fig. 5 (optimized/baseline speedup, A2)",
      ghs::core::AllocSite::kA2,
      "speedup ranges 0.998..6.729; significant when the GPU part is at "
      "least 90% of the work",
      argc, argv);
}
