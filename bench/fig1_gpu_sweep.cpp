// Reproduces Fig. 1a-1d: GPU-only reduction bandwidth as a function of the
// number of teams (x) and the number of elements added per loop iteration
// (one series per V), for each evaluation case, in explicit-map mode with
// thread_limit 256 — the paper's Section III.C parameter sweep.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/chart.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "fig1_gpu_sweep",
      "Fig.1: bandwidth vs teams x V sweep on the simulated H100",
      /*default_iterations=*/25);
  const auto* thread_limit =
      common.cli().add_int("thread-limit", 256, "OpenMP thread_limit");
  const auto* chart = common.cli().add_flag("chart", "render an ASCII chart");
  const auto options = common.parse(argc, argv);

  core::SweepOptions sweep;
  sweep.config = options.config;
  sweep.iterations = options.iterations;
  sweep.elements = options.elements;
  sweep.thread_limit = static_cast<int>(*thread_limit);
  sweep.telemetry = options.telemetry();

  const char* figure_ids[] = {"1a", "1b", "1c", "1d"};
  for (workload::CaseId case_id : options.cases) {
    const auto figure = core::fig1_sweep(case_id, sweep);
    if (options.csv) {
      figure.render_csv(std::cout);
    } else {
      std::cout << "Fig. "
                << figure_ids[static_cast<int>(case_id)] << ":\n";
      figure.render(std::cout);
      if (*chart) {
        stats::ChartOptions chart_options;
        chart_options.log_x = true;  // the teams axis is powers of two
        stats::render_chart(figure, std::cout, chart_options);
      }
    }
    switch (case_id) {
      case workload::CaseId::kC1:
        bench::print_paper_reference(
            options.csv,
            "C1 saturates near 4096 teams; best bandwidth 3795 GB/s");
        break;
      case workload::CaseId::kC2:
        bench::print_paper_reference(
            options.csv,
            "C2 saturates near 32768 teams; best bandwidth 3596 GB/s");
        break;
      case workload::CaseId::kC3:
        bench::print_paper_reference(
            options.csv,
            "C3 saturates near 4096 teams; best bandwidth 3790 GB/s");
        break;
      case workload::CaseId::kC4:
        bench::print_paper_reference(
            options.csv,
            "C4 saturates near 4096 teams; best bandwidth 3833 GB/s");
        break;
    }
    std::cout << "\n";
  }
  bench::write_metrics(options);
  return 0;
}
