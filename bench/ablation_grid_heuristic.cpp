// Ablation: how much of the baseline's slowness is the runtime's grid
// heuristic? Runs the baseline-shaped kernel (v = 1, 128 threads) under
// the NVHPC heuristic grid (M/128, clamped to 0xFFFFFF), several fixed
// grids, and an occupancy-derived grid, for each case. Section III.C's
// conclusion — "the heuristics may be further optimized in the vendor's
// implementation" — is quantified here.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/omp/heuristics.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "ablation_grid_heuristic",
      "Baseline bandwidth under alternative grid-geometry heuristics",
      /*default_iterations=*/5);
  const auto options = common.parse(argc, argv);

  const core::SystemConfig& config = options.config;
  stats::Table table({"Case", "Grid policy", "Grid", "GB/s"});

  for (workload::CaseId case_id : options.cases) {
    const auto& spec = workload::case_spec(case_id);
    const std::int64_t elements =
        options.elements > 0 ? options.elements : spec.paper_elements;

    struct Policy {
      std::string name;
      std::int64_t grid;
    };
    std::vector<Policy> policies;
    policies.push_back(
        {"NVHPC heuristic (M/128, clamp 0xFFFFFF)",
         omp::heuristic_grid(config.omp.heuristic, elements)});
    policies.push_back(
        {"occupancy x1 (132 SMs x 16 CTAs)", omp::occupancy_grid(132, 16, 1)});
    policies.push_back(
        {"occupancy x8", omp::occupancy_grid(132, 16, 8)});
    policies.push_back({"fixed 65536", 65536});
    policies.push_back({"fixed 1048576", 1 << 20});

    for (const auto& policy : policies) {
      core::Platform platform(config);
      core::GpuBenchmark bench;
      bench.case_id = case_id;
      // v = 1 with teams == grid reproduces the baseline loop body under a
      // chosen grid; thread_limit 128 matches the heuristic's default team.
      bench.tuning = core::ReduceTuning{policy.grid, 128, 1};
      bench.elements = elements;
      bench.iterations = options.iterations;
      const auto result = core::run_gpu_benchmark(platform, bench);
      table.add_row({spec.name, policy.name, std::to_string(policy.grid),
                     format_fixed(result.bandwidth.gbps(), 0)});
    }
  }

  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "Grid-heuristic ablation (baseline loop body, v=1):\n";
    table.render(std::cout);
    bench::print_paper_reference(
        options.csv,
        "the NVHPC heuristic grid leaves 6.1x-20.9x on the table vs tuned "
        "geometry (Table 1)");
  }
  return 0;
}
