// Wall-clock throughput instrumentation for the serve-layer load
// generators (--perf). Everything here measures the real machine, not the
// simulated one, so the section is opt-in: default reports stay
// byte-identical across runs and machines, and perf numbers are gated by
// scripts/perf_gate.py as lower bounds rather than diffed exactly.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "ghs/sim/event_queue.hpp"

namespace ghs::bench {

/// One policy run's event-core throughput: simulator events and served
/// jobs per second of wall time, measured from first submit to queue
/// drain.
struct PerfSample {
  std::string policy;
  sim::QueueKind queue = sim::QueueKind::kHeap;
  double wall_seconds = 0.0;
  std::uint64_t sim_events = 0;
  std::uint64_t jobs_served = 0;
  std::size_t peak_queue_size = 0;

  double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(sim_events) / wall_seconds
                              : 0.0;
  }
  double jobs_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(jobs_served) / wall_seconds
                              : 0.0;
  }
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_seconds() const {
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start_;
    return d.count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Renders the "perf" report section: a JSON array, one entry per policy
/// run, stable key order.
inline void write_perf_json(std::ostream& os,
                            const std::vector<PerfSample>& samples) {
  const auto fixed = [&os](double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    os << buf;
  };
  os << "[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const PerfSample& s = samples[i];
    if (i > 0) os << ",";
    os << "{\"policy\":\"" << s.policy << "\",\"queue\":\""
       << sim::queue_kind_name(s.queue) << "\",\"wall_seconds\":";
    fixed(s.wall_seconds);
    os << ",\"sim_events\":" << s.sim_events
       << ",\"events_per_sec\":";
    fixed(s.events_per_sec());
    os << ",\"jobs_per_sec\":";
    fixed(s.jobs_per_sec());
    os << ",\"peak_queue_size\":" << s.peak_queue_size << "}";
  }
  os << "]";
}

}  // namespace ghs::bench
