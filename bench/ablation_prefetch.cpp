// Extension bench: does explicit placement (cudaMemPrefetchAsync-style
// hints, which the paper's §IV.A notes the OpenMP runtime may derive from
// map clauses) repair the A2 allocation site? Compares, per case:
//   A1            — the paper's warm path,
//   A2            — the paper's cold path,
//   A2 + prefetch — fresh allocation but with the GPU part prefetched to
//                   HBM and the CPU part pinned in LPDDR before timing.
// Prefetching also removes the CPU-remote penalty A1 suffers at large p.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "ablation_prefetch",
      "A1 vs A2 vs A2+prefetch for the optimized UM co-execution",
      /*default_iterations=*/100);
  const auto options = common.parse(argc, argv);

  struct Variant {
    std::string name;
    core::AllocSite site;
    bool prefetch;
    bool read_mostly;
  };
  const Variant variants[] = {
      {"A1", core::AllocSite::kA1, false, false},
      {"A2", core::AllocSite::kA2, false, false},
      {"A2 + prefetch", core::AllocSite::kA2, true, false},
      {"A1 + prefetch", core::AllocSite::kA1, true, false},
      {"A1 + read-mostly", core::AllocSite::kA1, false, true},
      {"A2 + read-mostly", core::AllocSite::kA2, false, true},
  };

  stats::Table table({"Case", "Variant", "GPU-only GB/s", "Best co-run GB/s",
                      "Best p", "CPU-only GB/s"});
  for (workload::CaseId case_id : options.cases) {
    for (const auto& variant : variants) {
      core::Platform platform(options.config);
      core::HeteroBenchmark bench;
      bench.case_id = case_id;
      bench.tuning = core::paper_best_tuning(case_id);
      bench.site = variant.site;
      bench.prefetch = variant.prefetch;
      bench.read_mostly_advice = variant.read_mostly;
      bench.cpu_parts = core::paper_cpu_parts();
      bench.elements = options.elements;
      bench.iterations = options.iterations;
      const auto result = core::run_hetero_benchmark(platform, bench);
      double best = 0.0;
      double best_p = 0.0;
      for (const auto& point : result.points) {
        if (point.bandwidth.gbps() > best) {
          best = point.bandwidth.gbps();
          best_p = point.cpu_part;
        }
      }
      table.add_row({workload::case_spec(case_id).name, variant.name,
                     format_fixed(result.at(0.0).bandwidth.gbps(), 0),
                     format_fixed(best, 0), format_fixed(best_p, 1),
                     format_fixed(result.at(1.0).bandwidth.gbps(), 0)});
    }
  }

  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "Prefetch ablation (optimized kernel, UM mode):\n";
    table.render(std::cout);
    bench::print_paper_reference(
        options.csv,
        "extension beyond the paper: explicit placement recovers the A1 "
        "benefit at A2 and fixes A1's CPU-only penalty");
  }
  return 0;
}
