// Reproduces Table 1: baseline (Listing 2, runtime-heuristic grid) vs the
// best optimized configuration from the Fig. 1 sweep, with speedup and
// efficiency against the 4022.7 GB/s peak.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "table1_baseline_vs_optimized",
      "Table 1: baseline vs optimized sum reduction on the simulated H100",
      /*default_iterations=*/10);
  const auto options = common.parse(argc, argv);

  core::SweepOptions sweep;
  sweep.config = options.config;
  sweep.iterations = options.iterations;
  sweep.elements = options.elements;
  sweep.telemetry = options.telemetry();

  const auto rows = core::table1(options.cases, sweep);

  stats::Table table({"Case", "Base (GB/s)", "Optimized (GB/s)", "Speedup",
                      "Efficiency (%)", "Best (teams, v)"});
  for (const auto& row : rows) {
    std::string eff = format_fixed(100.0 * row.baseline_efficiency, 1);
    eff += " / ";
    eff += format_fixed(100.0 * row.optimized_efficiency, 1);
    std::string best = std::to_string(row.best.teams);
    best += ", v";
    best += std::to_string(row.best.v);
    table.add_row({workload::case_spec(row.case_id).name,
                   format_fixed(row.baseline_gbps, 0),
                   format_fixed(row.optimized_gbps, 0),
                   format_fixed(row.speedup, 3), eff, best});
  }
  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "Table 1 (simulated GH200):\n";
    table.render(std::cout);
    bench::print_paper_reference(
        options.csv,
        "C1 620/3795 (6.120x, 15.4/94.3%), C2 172/3596 (20.906x, "
        "4.3/89.4%), C3 271/3790 (13.985x, 6.7/94.2%), C4 526/3833 "
        "(7.287x, 13.1/95.3%)");
  }
  bench::write_metrics(options);
  return 0;
}
