// Ablation: the reduction-combine path. The baseline's per-CTA combine
// (one serialized atomic per team to the reduction variable) is what makes
// huge heuristic grids catastrophic — and why the four cases separate
// (native int vs widening int vs float CAS-loop). This bench re-runs the
// baseline under three combine models: the calibrated vendor costs, an
// all-CAS runtime (every type pays the float-CAS price), and a
// device-side tree combine (near-free per CTA, as a second-kernel
// reduction would behave).
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "ablation_combine_strategy",
      "Baseline bandwidth under alternative reduction-combine models",
      /*default_iterations=*/5);
  const auto options = common.parse(argc, argv);

  struct Variant {
    std::string name;
    core::SystemConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"calibrated vendor combine", options.config});
  {
    core::SystemConfig all_cas = core::gh200_config();
    all_cas.gpu.combine_native_int = all_cas.gpu.combine_float64_cas;
    all_cas.gpu.combine_widening_int = all_cas.gpu.combine_float64_cas;
    variants.push_back({"all-CAS combine", all_cas});
  }
  {
    core::SystemConfig tree = core::gh200_config();
    tree.gpu.combine_native_int = from_nanoseconds(0.05);
    tree.gpu.combine_widening_int = from_nanoseconds(0.05);
    tree.gpu.combine_float32_cas = from_nanoseconds(0.05);
    tree.gpu.combine_float64_cas = from_nanoseconds(0.05);
    variants.push_back({"device tree combine (second kernel)", tree});
  }

  stats::Table table({"Case", "Combine model", "Baseline GB/s"});
  for (workload::CaseId case_id : options.cases) {
    for (const auto& variant : variants) {
      core::Platform platform(variant.config);
      core::GpuBenchmark bench;
      bench.case_id = case_id;
      bench.tuning = std::nullopt;  // the Listing 2 baseline
      bench.elements = options.elements;
      bench.iterations = options.iterations;
      const auto result = core::run_gpu_benchmark(platform, bench);
      table.add_row({workload::case_spec(case_id).name, variant.name,
                     format_fixed(result.bandwidth.gbps(), 0)});
    }
  }

  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "Combine-strategy ablation (baseline kernel, heuristic "
                 "grid):\n";
    table.render(std::cout);
    bench::print_paper_reference(
        options.csv,
        "per-type combine costs explain the baseline spread 620 / 172 / "
        "271 / 526 GB/s");
  }
  return 0;
}
