// Shared "build_info" section for loadgen JSON reports.
//
// Every top-level loadgen report opens with a build_info object recording
// the report schema version and how the binary was built (compiler,
// build type, sanitizers). scripts/metrics_diff.py refuses to diff
// reports whose schemas differ, so a report produced by an older binary
// can't be silently compared against a newer, shape-incompatible one.
//
// The section is a pure function of the binary (no timestamps, no
// hostnames), so same-binary same-seed reports stay byte-identical.
// Metrics snapshots, series dumps, and traces deliberately do NOT carry
// build_info: those artefacts are diffed byte-for-byte across binaries
// by scripts/check.sh.
#pragma once

#include <ostream>

namespace ghs::bench {

/// Report schema version. Bump when a loadgen report's shape changes
/// incompatibly; metrics_diff.py exits 2 on a mismatch.
inline constexpr const char* kReportSchema = "ghs-report-v2";

/// Writes `"build_info":{...}` (no surrounding braces/comma). Callers
/// emit it as the first key of the top-level report object.
inline void write_build_info(std::ostream& os) {
  os << "\"build_info\":{\"schema\":\"" << kReportSchema << "\"";
  os << ",\"compiler\":\""
#if defined(__clang__)
     << "clang\",\"compiler_version\":\"" << __clang_major__ << "."
     << __clang_minor__ << "." << __clang_patchlevel__ << "\"";
#elif defined(__GNUC__)
     << "gcc\",\"compiler_version\":\"" << __GNUC__ << "." << __GNUC_MINOR__
     << "." << __GNUC_PATCHLEVEL__ << "\"";
#else
     << "unknown\",\"compiler_version\":\"unknown\"";
#endif
  os << ",\"build_type\":\""
#if defined(NDEBUG)
     << "release"
#else
     << "debug"
#endif
     << "\"";
  // GHS_SANITIZE_BUILD comes from the cmake GHS_SANITIZE option; UBSan
  // has no feature-test macro, so the cmake-level definition is the only
  // reliable signal for the combined asan+ubsan config this repo builds.
  os << ",\"sanitizer\":\""
#if defined(GHS_SANITIZE_BUILD) || defined(__SANITIZE_ADDRESS__)
     << "asan+ubsan"
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
     << "asan+ubsan"
#else
     << "none"
#endif
#else
     << "none"
#endif
     << "\"}";
}

}  // namespace ghs::bench
