// google-benchmark micro-suite for the simulation substrate itself: how
// fast the event queue, fluid network, UM page planner, and device models
// execute on the host. These are engineering benchmarks for the simulator
// (not paper artefacts); they catch performance regressions that would
// make the figure benches crawl.
#include <benchmark/benchmark.h>

#include "ghs/core/reduce.hpp"
#include "ghs/core/verify.hpp"
#include "ghs/sim/fluid.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/workload/host_array.hpp"

namespace {

using namespace ghs;

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < count; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_FluidFairShare(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FluidNetwork net(sim);
    const auto r = net.add_resource("r", Bandwidth::from_gbps(100.0));
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      sim::FlowSpec spec;
      spec.bytes = 1e9 * (1 + i % 5);
      spec.resources = {r};
      spec.on_complete = [&done] { ++done; };
      net.start_flow(std::move(spec));
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidFairShare)->Arg(8)->Arg(64)->Arg(256);

void BM_GpuKernelSimulation(benchmark::State& state) {
  const auto grid = state.range(0);
  for (auto _ : state) {
    core::Platform platform;
    core::GpuBenchmark bench;
    bench.case_id = workload::CaseId::kC1;
    bench.tuning = core::ReduceTuning{grid, 256, 4};
    bench.elements = 1 << 24;
    bench.iterations = 1;
    const auto result = core::run_gpu_benchmark(platform, bench);
    benchmark::DoNotOptimize(result.elapsed);
  }
}
BENCHMARK(BM_GpuKernelSimulation)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_BaselineKernelSimulation(benchmark::State& state) {
  // The heuristic grid for 2^24 elements is 131072 CTAs: exercises the
  // wave executor's many-wave path.
  for (auto _ : state) {
    core::Platform platform;
    core::GpuBenchmark bench;
    bench.case_id = workload::CaseId::kC1;
    bench.elements = 1 << 24;
    bench.iterations = 1;
    const auto result = core::run_gpu_benchmark(platform, bench);
    benchmark::DoNotOptimize(result.elapsed);
  }
}
BENCHMARK(BM_BaselineKernelSimulation);

void BM_UmSweepPoint(benchmark::State& state) {
  for (auto _ : state) {
    core::Platform platform;
    core::HeteroBenchmark bench;
    bench.case_id = workload::CaseId::kC1;
    bench.cpu_parts = {0.5};
    bench.elements = 1 << 24;
    bench.iterations = 5;
    const auto result = core::run_hetero_benchmark(platform, bench);
    benchmark::DoNotOptimize(result.points[0].elapsed);
  }
}
BENCHMARK(BM_UmSweepPoint);

void BM_HostReferenceSum(benchmark::State& state) {
  const auto case_id = static_cast<workload::CaseId>(state.range(0));
  const auto input = workload::HostArray::make(
      case_id, 1 << 20, workload::Pattern::kUniform, 42);
  for (auto _ : state) {
    const auto sum = input.serial_sum();
    benchmark::DoNotOptimize(sum.i + static_cast<std::int64_t>(sum.d));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_HostReferenceSum)->DenseRange(0, 3);

void BM_ChunkedVerification(benchmark::State& state) {
  const auto input = workload::HostArray::make(
      workload::CaseId::kC3, 1 << 20, workload::Pattern::kUniform, 42);
  for (auto _ : state) {
    const auto report = core::verify_gpu_reduction(input, 4096, 1e-3);
    benchmark::DoNotOptimize(report.ok);
  }
}
BENCHMARK(BM_ChunkedVerification);

}  // namespace

BENCHMARK_MAIN();
