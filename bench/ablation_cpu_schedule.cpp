// Extension bench: the host-side loop schedule under co-execution. The
// paper's Listing 7 uses the default static schedule; related work ([34],
// dynamic scheduling with unified shared memory) motivates asking whether
// rebalancing helps when the CPU's share of a UM array mixes LPDDR- and
// HBM-resident pages (exactly the A1 situation at p > 0). Sweeps the A1
// optimized co-execution under static/dynamic/guided host schedules.
#include <iostream>

#include "common.hpp"
#include "ghs/core/sweep.hpp"
#include "ghs/cpu/device.hpp"
#include "ghs/stats/table.hpp"
#include "ghs/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  bench::CommonCli common(
      "ablation_cpu_schedule",
      "A1 optimized co-execution under host loop schedules",
      /*default_iterations=*/100);
  const auto options = common.parse(argc, argv);

  // The stock HeteroBenchmark fixes the schedule at static; rebuild the
  // CPU-relevant portion of the sweep here with the schedule swapped in.
  stats::Table table({"Case", "Schedule", "CPU-only GB/s (mixed pages)",
                      "CPU-only GB/s (local pages)"});
  for (workload::CaseId case_id : options.cases) {
    const auto& spec = workload::case_spec(case_id);
    const std::int64_t elements =
        options.elements > 0 ? options.elements : spec.paper_elements;
    const Bytes bytes = elements * spec.element_size;
    for (auto schedule : {cpu::ScheduleKind::kStatic,
                          cpu::ScheduleKind::kDynamic,
                          cpu::ScheduleKind::kGuided}) {
      const auto run_cpu = [&](bool mixed) {
        core::Platform platform(options.config);
        auto alloc = platform.um().allocate(bytes, mem::RegionId::kLpddr,
                                            spec.name);
        if (mixed) {
          // Second half stranded in HBM, as after an A1 p-sweep prefix.
          platform.um().complete_segment(alloc, bytes / 2, bytes - bytes / 2,
                                         mem::RegionId::kHbm);
        }
        cpu::CpuReduceRequest request;
        request.label = spec.name;
        request.elements = elements;
        request.element_size = spec.element_size;
        request.threads = 72;
        request.managed = true;
        request.managed_alloc = alloc;
        request.schedule = schedule;
        double gbps = 0.0;
        platform.cpu().reduce(request,
                              [&](const cpu::CpuReduceResult& r) {
                                gbps = r.bandwidth().gbps();
                              });
        platform.run();
        return gbps;
      };
      table.add_row({spec.name, cpu::schedule_name(schedule),
                     format_fixed(run_cpu(true), 0),
                     format_fixed(run_cpu(false), 0)});
    }
  }

  if (options.csv) {
    table.render_csv(std::cout);
  } else {
    std::cout << "Host-schedule ablation (managed input):\n";
    table.render(std::cout);
    bench::print_paper_reference(
        options.csv,
        "extension: dynamic scheduling removes the static schedule's "
        "stragglers on mixed-residency ranges");
  }
  return 0;
}
