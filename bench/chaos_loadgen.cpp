// Chaos load generator: serve_loadgen plus a fault::Injector.
//
// Runs the same mixed C1-C4 workload through the reduction service while a
// FaultPlan degrades the simulated hardware — transient kernel failures,
// bandwidth brown-outs, device-down outages, migration stalls — and the
// service defends itself with retries, circuit breakers, deadline-aware
// shedding, and CPU fallback. The report is the serve_loadgen JSON format
// with the fault-handling keys (retries, gpu_failures, breaker_opens,
// shed, fallback_cpu_jobs) appended to each policy report:
//
//   $ ./bench/chaos_loadgen                        # built-in chaos plan
//   $ ./bench/chaos_loadgen --plan=outage.plan --fault-seed=9
//   $ ./bench/chaos_loadgen --policy=all --metrics-out=chaos.prom
//   $ ./bench/chaos_loadgen --trace=chaos.json --slo --slo-latency-ms=0.25
//   $ ./bench/chaos_loadgen --queue=calendar --perf
//
// Every run asserts the zero-lost-jobs invariant: every submitted job is
// served, rejected at admission, or shed — chaos never loses work. Two
// runs from the same (plan, seed) emit byte-identical reports.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/profile/profiler.hpp"
#include "ghs/profile/recorder.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/slo/monitor.hpp"
#include "ghs/telemetry/exporters.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/chrome_exporter.hpp"
#include "ghs/util/cli.hpp"
#include "ghs/util/error.hpp"
#include "build_info.hpp"
#include "profile.hpp"
#include "scrape.hpp"
#include "serve_perf.hpp"

namespace {

using namespace ghs;

// Default chaos: a mid-run GPU outage (trips the breaker, forces CPU
// fallback), a sprinkle of transient kernel faults, and a tail brown-out
// with a migration stall for unified jobs. Sized against the default
// open-loop workload (200 jobs at 100k jobs/s = ~2 ms of arrivals plus
// queue drain).
constexpr const char* kBuiltinPlan =
    "# chaos_loadgen built-in plan\n"
    "kernel-fault gpu p=0.02\n"
    "device-down gpu from=1ms until=2500us\n"
    "bandwidth gpu scale=0.5 from=3ms until=5ms\n"
    "migration-stall scale=0.25 from=3ms until=5ms\n";

struct RunSettings {
  bool closed = false;
  serve::OpenLoopOptions open;
  serve::ClosedLoopOptions closed_opts;
  serve::ServiceOptions service;
  std::string trace_path;
  /// Head-sampling rate for the tracer; 1.0 keeps every span (and leaves
  /// the trace file byte-identical to a sampler-free run).
  double trace_sample = 1.0;
  /// SLO objectives to evaluate per policy run; empty = no SLO section.
  std::vector<slo::Objective> slo_objectives;
  /// Sim-time metrics scraping (off unless --scrape-interval was given).
  bench::ScrapeSettings scrape;
  /// Sim-time profiling / cost attribution (off unless a --profile-* or
  /// --cost-report flag was given, keeping artefacts byte-identical).
  bench::ProfileSettings profile;
};

serve::ServiceReport run_policy(const std::string& name,
                                serve::ServiceModel& model,
                                const fault::FaultPlan& plan,
                                std::uint64_t fault_seed,
                                const RunSettings& settings,
                                std::string* slo_json,
                                std::string* timeline_json,
                                std::string* cost_json,
                                bench::PerfSample* perf) {
  trace::Tracer tracer;
  const bool tracing = !settings.trace_path.empty();
  tracer.set_sampler(
      trace::SamplerOptions{settings.trace_sample, settings.open.seed});
  // A fresh injector per policy run replays the chaos campaign from
  // (plan, seed) for every policy, so reports are comparable and two
  // invocations of this bench are byte-identical.
  fault::Injector injector(plan, fault_seed, settings.service.telemetry);
  const bool profiling = settings.profile.enabled();
  // Declared before the service so the pool's recorder pointer stays
  // valid through the service's destructor.
  std::optional<profile::Recorder> recorder;
  serve::ServiceOptions options = settings.service;
  options.injector = &injector;
  if (profiling) {
    recorder.emplace();
    options.profile = &*recorder;
  }
  serve::ReductionService service(serve::make_policy(name, model), model,
                                  options, tracing ? &tracer : nullptr);
  const bool scraping = settings.scrape.enabled();
  timeseries::Tsdb store;
  std::optional<timeseries::Scraper> scraper;
  if (scraping) {
    timeseries::ScraperOptions scraper_options;
    scraper_options.interval = settings.scrape.interval;
    scraper.emplace(service.sim(), *settings.service.telemetry.metrics, store,
                    scraper_options);
    scraper->start();
  }
  std::optional<profile::Profiler> profiler;
  if (settings.profile.sampling()) {
    profile::ProfilerOptions profiler_options;
    profiler_options.interval = settings.profile.interval;
    profiler.emplace(service.sim(), *recorder, profiler_options, &store);
    profiler->start();
  }
  const bench::WallTimer timer;
  if (settings.closed) {
    serve::run_closed_loop(service, settings.closed_opts);
  } else {
    service.submit_all(serve::open_loop_poisson(settings.open));
    service.run();
  }
  if (scraping) scraper->finish();
  if (profiler) profiler->finish();
  if (profiling) {
    // Even under chaos — failed launches, retries, CPU fallback — the
    // attributed time/bytes must reconcile with the pool's own totals.
    const auto check =
        recorder->ledger().check(service.conservation_totals());
    GHS_REQUIRE(check.ok(),
                "cost attribution leaked on policy '" << name << "'");
  }
  if (perf != nullptr) {
    perf->policy = name;
    perf->queue = service.sim().queue_kind();
    perf->wall_seconds = timer.elapsed_seconds();
    perf->sim_events = service.sim().events_processed();
    perf->jobs_served =
        static_cast<std::uint64_t>(service.records().size());
    perf->peak_queue_size = service.sim().peak_queue_size();
  }
  if (tracing && tracer.sampler_active() &&
      settings.service.telemetry.metrics != nullptr) {
    // Sampler drops are a pure function of (seed, trace ids), so unlike
    // the wall gauge this counter may live in the deterministic snapshot.
    settings.service.telemetry.metrics
        ->counter("ghs_trace_dropped_by_sampler_total", {},
                  "Span/instant records rejected by the trace head sampler")
        .inc(tracer.dropped_by_sampler());
  }
  if (tracing) {
    std::ofstream out(settings.trace_path);
    GHS_REQUIRE(out.good(), "cannot write " << settings.trace_path);
    trace::ChromeTraceExporter exporter(tracer);
    if (scraping) {
      bench::add_counter_tracks(exporter, store, settings.scrape.interval);
    }
    if (profiler) bench::add_profile_tracks(exporter, *profiler);
    exporter.write(out);
  }
  if (profiler) {
    // Like the trace, the last policy run wins the collapsed-stack file.
    bench::write_profile_file("chaos_loadgen", settings.profile, *profiler);
  }
  if (settings.profile.cost_report && cost_json != nullptr) {
    std::ostringstream cost_os;
    recorder->ledger().write_json(cost_os, service.conservation_totals());
    *cost_json = cost_os.str();
    std::cerr << "[" << name << "] ";
    recorder->ledger().write_table(std::cerr, /*top_k=*/5);
  }
  if (scraping) {
    // Like the trace, the last policy run wins the series file.
    bench::write_series_file("chaos_loadgen", settings.scrape, store,
                             *scraper);
    if (timeline_json != nullptr) {
      timeseries::TimelineOptions timeline_options;
      timeline_options.interval = settings.scrape.interval;
      timeline_options.queue_capacity = settings.service.queue_depth;
      const auto timeline = timeseries::build_timeline(store,
                                                       timeline_options);
      std::ostringstream timeline_os;
      timeline.write_json(timeline_os);
      *timeline_json = timeline_os.str();
      std::cerr << "[" << name << "] ";
      timeline.write_table(std::cerr);
    }
  }
  if (!settings.slo_objectives.empty() && slo_json != nullptr) {
    slo::Monitor monitor(settings.slo_objectives);
    monitor.feed(service);
    std::ostringstream slo_os;
    monitor.evaluate().write_json(slo_os);
    *slo_json = slo_os.str();
  }
  const auto report = service.report();
  // Zero-lost-jobs invariant: chaos may delay, degrade, or shed work, but
  // every admitted job must be accounted for.
  GHS_CHECK(report.submitted ==
                report.served + report.rejected + report.shed,
            "lost jobs under " << name << ": submitted=" << report.submitted
                               << " served=" << report.served
                               << " rejected=" << report.rejected
                               << " shed=" << report.shed);
  return report;
}

/// The stock objective set for --slo: three-nines availability plus a p99
/// latency bound.
std::vector<slo::Objective> default_objectives(double latency_ms) {
  std::vector<slo::Objective> objectives;
  objectives.push_back(
      slo::Objective{"availability", slo::ObjectiveKind::kAvailability,
                     0.999, 0.0});
  objectives.push_back(
      slo::Objective{"latency_p99", slo::ObjectiveKind::kLatencyQuantile,
                     0.99, latency_ms});
  return objectives;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("chaos_loadgen",
          "serve-layer load generator under a deterministic fault plan");
  const auto* policy =
      cli.add_string("policy", "fifo", "all|fifo|sjf|bandwidth");
  const auto* plan_path = cli.add_string(
      "plan", "", "fault-plan file (empty = built-in chaos plan)");
  const auto* fault_seed =
      cli.add_int("fault-seed", 7, "fault-injector RNG seed");
  const auto* rate =
      cli.add_double("rate", 100000.0, "open-loop arrival rate, jobs/s");
  const auto* jobs = cli.add_int("jobs", 200, "total jobs to submit");
  const auto* depth = cli.add_int("depth", 64, "admission queue depth");
  const auto* seed = cli.add_int("seed", 42, "workload RNG seed");
  const auto* min_log2 =
      cli.add_int("min-log2", 16, "smallest job, log2(elements)");
  const auto* max_log2 =
      cli.add_int("max-log2", 21, "largest job, log2(elements)");
  const auto* deadline_us =
      cli.add_int("deadline-us", 0, "relative deadline (0 = best effort)");
  const auto* closed = cli.add_flag("closed", "closed loop instead of open");
  const auto* tenants = cli.add_int("tenants", 8, "closed-loop tenants");
  const auto* think_us =
      cli.add_int("think-us", 0, "closed-loop think time between jobs");
  const auto* no_batch = cli.add_flag("no-batch", "disable launch batching");
  const auto* no_cpu =
      cli.add_flag("no-cpu", "GPU-only device pool (no Grace CPU)");
  const auto* trace_path =
      cli.add_string("trace", "", "write a Chrome-trace JSON timeline here");
  const auto* trace_sample = cli.add_double(
      "trace-sample", 1.0,
      "fraction of job traces kept by the head sampler (1.0 = all)");
  const auto* um_fraction = cli.add_double(
      "um-fraction", 0.0,
      "fraction of jobs over unified-memory buffers (GPU-only placement)");
  const auto* queue_kind = cli.add_string(
      "queue", "heap", "simulator event queue: heap|calendar");
  const auto* perf = cli.add_flag(
      "perf", "append wall-clock event-core throughput (machine-dependent)");
  const auto* max_attempts =
      cli.add_int("max-attempts", 4, "launch attempts per job, incl. first");
  const auto* retry_base_us =
      cli.add_int("retry-base-us", 50, "retry backoff base, microseconds");
  const auto* retry_cap_us =
      cli.add_int("retry-cap-us", 2000, "retry backoff cap, microseconds");
  const auto* retry_jitter = cli.add_double(
      "retry-jitter", 0.25, "jitter fraction added to each backoff");
  const auto* breaker_threshold = cli.add_int(
      "breaker-threshold", 3, "consecutive failures that open the breaker");
  const auto* breaker_open_us = cli.add_int(
      "breaker-open-us", 500, "breaker cool-down before half-open probe");
  const auto* metrics_out = cli.add_string(
      "metrics-out", "",
      "write Prometheus metrics here (+ JSON snapshot at FILE.json)");
  const auto* slo = cli.add_flag(
      "slo", "evaluate SLOs per policy and append an slo_report section");
  const auto* slo_latency_ms = cli.add_double(
      "slo-latency-ms", 1.0, "latency_p99 objective threshold, milliseconds");
  const auto* scrape_interval = cli.add_int(
      "scrape-interval", 0,
      "sim-time metrics scrape interval, microseconds (0 = off)");
  const auto* series_out = cli.add_string(
      "series-out", "",
      "write the scraped time-series dump here (.csv for CSV)");
  const auto* profile_interval = cli.add_int(
      "profile-interval", 0,
      "sim-time profiler sample interval, microseconds (0 = off)");
  const auto* profile_out = cli.add_string(
      "profile-out", "",
      "write collapsed stacks here (flamegraph.pl-compatible)");
  const auto* cost_report = cli.add_flag(
      "cost-report",
      "append per-tenant cost attribution to the report (+ stderr table)");
  cli.parse_or_exit(argc, argv);

  const auto scrape = bench::scrape_settings_or_exit(
      "chaos_loadgen", *scrape_interval, *series_out);
  const auto profile = bench::profile_settings_or_exit(
      "chaos_loadgen", *profile_interval, *profile_out, *cost_report);
  bench::require_positive("chaos_loadgen", "--jobs", *jobs);
  bench::require_positive("chaos_loadgen", "--rate", *rate);
  bench::require_positive("chaos_loadgen", "--depth", *depth);
  bench::require_positive("chaos_loadgen", "--max-attempts", *max_attempts);
  bench::require_fraction("chaos_loadgen", "--trace-sample", *trace_sample);
  bench::require_fraction("chaos_loadgen", "--um-fraction", *um_fraction);
  bench::require_writable_path("chaos_loadgen", *metrics_out);
  bench::require_writable_path("chaos_loadgen", *trace_path);

  const auto wall_start = std::chrono::steady_clock::now();

  telemetry::Registry registry;
  telemetry::FlightRecorder flight;
  const bool metrics = !metrics_out->empty();
  const bool scraping = scrape.enabled();
  telemetry::Sink sink = (metrics || scraping)
                             ? telemetry::Sink{&registry, &flight}
                             : telemetry::Sink{};
  sink.timeline = scraping;

  const fault::FaultPlan plan = plan_path->empty()
                                    ? fault::parse_plan(kBuiltinPlan)
                                    : fault::load_plan(*plan_path);

  RunSettings settings;
  settings.closed = *closed;
  settings.trace_path = *trace_path;
  settings.scrape = scrape;
  settings.profile = profile;

  serve::WorkloadShape shape;
  shape.min_log2_elements = static_cast<int>(*min_log2);
  shape.max_log2_elements = static_cast<int>(*max_log2);
  shape.deadline = *deadline_us * kMicrosecond;
  shape.um_fraction = *um_fraction;

  settings.open.shape = shape;
  settings.open.rate_hz = *rate;
  settings.open.jobs = *jobs;
  settings.open.seed = static_cast<std::uint64_t>(*seed);

  settings.closed_opts.shape = shape;
  settings.closed_opts.tenants = static_cast<int>(*tenants);
  settings.closed_opts.jobs = *jobs;
  settings.closed_opts.think_time = *think_us * kMicrosecond;
  settings.closed_opts.seed = static_cast<std::uint64_t>(*seed);

  settings.service.queue_depth = static_cast<std::size_t>(*depth);
  settings.service.batching.enable = !*no_batch;
  settings.service.use_cpu = !*no_cpu;
  settings.service.telemetry = sink;
  settings.trace_sample = *trace_sample;
  const auto parsed_queue = sim::parse_queue_kind(*queue_kind);
  if (!parsed_queue) {
    std::cerr << "chaos_loadgen: unknown --queue value '" << *queue_kind
              << "' (expected heap or calendar)\n";
    return 2;
  }
  settings.service.sim.queue = *parsed_queue;
  settings.service.retry.max_attempts = static_cast<int>(*max_attempts);
  settings.service.retry.backoff_base = *retry_base_us * kMicrosecond;
  settings.service.retry.backoff_cap = *retry_cap_us * kMicrosecond;
  settings.service.retry.jitter = *retry_jitter;
  settings.service.breaker.failure_threshold =
      static_cast<int>(*breaker_threshold);
  settings.service.breaker.open_duration = *breaker_open_us * kMicrosecond;
  if (*slo) settings.slo_objectives = default_objectives(*slo_latency_ms);

  std::vector<std::string> policies;
  if (*policy == "all") {
    policies = {"fifo", "sjf", "bandwidth"};
  } else {
    policies = {*policy};
  }

  serve::ServiceModelOptions model_options;
  model_options.telemetry = sink;
  serve::ServiceModel model(model_options);

  std::ostringstream out;
  out << "{";
  bench::write_build_info(out);
  out << ",\"workload\":{\"mode\":\""
      << (settings.closed ? "closed" : "open") << "\"";
  if (settings.closed) {
    out << ",\"tenants\":" << settings.closed_opts.tenants
        << ",\"think_us\":" << *think_us;
  } else {
    out << ",\"rate_hz\":" << *rate;
  }
  out << ",\"jobs\":" << *jobs << ",\"seed\":" << *seed
      << ",\"min_log2_elements\":" << *min_log2
      << ",\"max_log2_elements\":" << *max_log2
      << ",\"deadline_us\":" << *deadline_us
      << ",\"um_fraction\":" << *um_fraction << ",\"queue_depth\":" << *depth
      << ",\"batching\":" << (settings.service.batching.enable ? "true"
                                                               : "false")
      << ",\"cpu_pool\":" << (settings.service.use_cpu ? "true" : "false");
  // Echoed only when scraping, so unscraped reports keep their exact bytes.
  if (scraping) out << ",\"scrape_interval_us\":" << *scrape_interval;
  if (profile.sampling()) {
    out << ",\"profile_interval_us\":" << *profile_interval;
  }
  out << "},\"fault\":{\"plan\":\""
      << (plan_path->empty() ? "builtin" : *plan_path)
      << "\",\"seed\":" << *fault_seed << ",\"specs\":" << plan.size()
      << ",\"max_attempts\":" << *max_attempts
      << ",\"breaker_threshold\":" << *breaker_threshold
      << "},\"policies\":[";

  serve::ServiceReport fifo_report;
  serve::ServiceReport bandwidth_report;
  bool have_fifo = false;
  bool have_bandwidth = false;
  std::vector<std::string> slo_reports(policies.size());
  std::vector<std::string> timeline_reports(policies.size());
  std::vector<std::string> cost_reports(policies.size());
  std::vector<bench::PerfSample> perf_samples(policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto report =
        run_policy(policies[i], model, plan,
                   static_cast<std::uint64_t>(*fault_seed), settings,
                   &slo_reports[i],
                   scraping ? &timeline_reports[i] : nullptr,
                   profile.cost_report ? &cost_reports[i] : nullptr,
                   *perf ? &perf_samples[i] : nullptr);
    if (i > 0) out << ",";
    report.write_json(out);
    if (policies[i] == "fifo") {
      fifo_report = report;
      have_fifo = true;
    } else if (policies[i] == "bandwidth") {
      bandwidth_report = report;
      have_bandwidth = true;
    }
  }
  out << "]";
  if (*slo) {
    out << ",\"slo_report\":[";
    for (std::size_t i = 0; i < policies.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"policy\":\"" << policies[i] << "\",\"slo\":"
          << slo_reports[i] << "}";
    }
    out << "]";
  }
  if (scraping) {
    out << ",\"timeline_report\":[";
    for (std::size_t i = 0; i < policies.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"policy\":\"" << policies[i] << "\",\"timeline\":"
          << timeline_reports[i] << "}";
    }
    out << "]";
  }
  if (profile.cost_report) {
    out << ",\"cost_report\":[";
    for (std::size_t i = 0; i < policies.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"policy\":\"" << policies[i] << "\",\"cost\":"
          << cost_reports[i] << "}";
    }
    out << "]";
  }
  if (have_fifo && have_bandwidth &&
      fifo_report.throughput_gbps > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f",
                  bandwidth_report.throughput_gbps /
                      fifo_report.throughput_gbps);
    out << ",\"comparison\":{\"fifo_gbps\":" << fifo_report.throughput_gbps
        << ",\"bandwidth_gbps\":" << bandwidth_report.throughput_gbps
        << ",\"bandwidth_over_fifo\":" << buf << "}";
  }
  if (*perf) {
    // Wall-clock section: machine-dependent by design, so it only exists
    // behind --perf and never perturbs byte-identity checks on the
    // default report.
    out << ",\"perf\":";
    bench::write_perf_json(out, perf_samples);
  }
  if (metrics) {
    // Wall time is real-world and run-dependent, so the gauge is volatile:
    // present in the Prometheus exposition, absent from the JSON snapshot.
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    registry
        .gauge("ghs_bench_wall_seconds", {},
               "wall-clock duration of this bench process",
               /*volatile_instrument=*/true)
        .set(wall.count());
    out << ",\"metrics\":";
    telemetry::write_json_snapshot(out, registry);
  }
  out << "}";
  std::cout << out.str() << "\n";

  if (metrics) {
    {
      telemetry::ExportOptions prom_options;
      prom_options.include_volatile = true;
      std::ofstream prom(*metrics_out);
      GHS_REQUIRE(prom.good(), "cannot write " << *metrics_out);
      telemetry::write_prometheus(prom, registry, prom_options);
    }
    const std::string json_path = *metrics_out + ".json";
    std::ofstream snapshot(json_path);
    GHS_REQUIRE(snapshot.good(), "cannot write " << json_path);
    telemetry::write_json_snapshot(snapshot, registry);
    snapshot << "\n";
  }
  return 0;
}
