// Reproduces Fig. 2a: baseline-kernel CPU+GPU co-execution in UM mode with
// the input array allocated at A1 (once, before the p sweep).
#include "um_bench.hpp"

int main(int argc, char** argv) {
  return ghs::bench::run_um_figure(
      "fig2a_um_a1_baseline", "Fig. 2a (baseline kernel, A1)",
      ghs::core::AllocSite::kA1, /*optimized=*/false,
      "highest speedups over GPU-only: 2.732 / 2.246 / 2.692 / 2.297 "
      "(avg ~2.492)",
      argc, argv);
}
