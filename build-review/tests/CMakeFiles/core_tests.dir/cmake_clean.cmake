file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/config_io_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/config_io_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/platform_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/platform_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/reduce_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/reduce_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/sweep_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/sweep_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/tuner_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/tuner_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/verify_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/verify_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
