file(REMOVE_RECURSE
  "CMakeFiles/gpu_tests.dir/gpu/coalescing_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/coalescing_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/device_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/device_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/occupancy_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/occupancy_test.cpp.o.d"
  "gpu_tests"
  "gpu_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
