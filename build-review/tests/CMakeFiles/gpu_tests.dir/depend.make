# Empty dependencies file for gpu_tests.
# This may be replaced when dependencies are built.
