file(REMOVE_RECURSE
  "CMakeFiles/mem_tests.dir/mem/topology_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/topology_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/transfer_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/transfer_test.cpp.o.d"
  "mem_tests"
  "mem_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
