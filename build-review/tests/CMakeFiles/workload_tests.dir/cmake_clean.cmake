file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/workload/cases_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/cases_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/generator_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/generator_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/host_array_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/host_array_test.cpp.o.d"
  "workload_tests"
  "workload_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
