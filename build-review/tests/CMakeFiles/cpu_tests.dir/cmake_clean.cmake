file(REMOVE_RECURSE
  "CMakeFiles/cpu_tests.dir/cpu/device_test.cpp.o"
  "CMakeFiles/cpu_tests.dir/cpu/device_test.cpp.o.d"
  "cpu_tests"
  "cpu_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
