file(REMOVE_RECURSE
  "CMakeFiles/um_tests.dir/um/manager_test.cpp.o"
  "CMakeFiles/um_tests.dir/um/manager_test.cpp.o.d"
  "um_tests"
  "um_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
