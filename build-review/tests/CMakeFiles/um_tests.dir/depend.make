# Empty dependencies file for um_tests.
# This may be replaced when dependencies are built.
