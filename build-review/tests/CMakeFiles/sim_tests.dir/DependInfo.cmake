
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/fluid_stress_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/fluid_stress_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/fluid_stress_test.cpp.o.d"
  "/root/repo/tests/sim/fluid_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/fluid_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/fluid_test.cpp.o.d"
  "/root/repo/tests/sim/server_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/server_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/server_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/simulator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ghs/sim/CMakeFiles/ghs_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/stats/CMakeFiles/ghs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/util/CMakeFiles/ghs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
