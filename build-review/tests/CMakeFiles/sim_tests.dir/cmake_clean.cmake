file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/fluid_stress_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/fluid_stress_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/fluid_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/fluid_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/server_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/server_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/simulator_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
