
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/chart_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/chart_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/chart_test.cpp.o.d"
  "/root/repo/tests/stats/series_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/series_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/series_test.cpp.o.d"
  "/root/repo/tests/stats/summary_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o.d"
  "/root/repo/tests/stats/table_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/table_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ghs/stats/CMakeFiles/ghs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/util/CMakeFiles/ghs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
