file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/chart_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/chart_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/series_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/series_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/table_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/table_test.cpp.o.d"
  "stats_tests"
  "stats_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
