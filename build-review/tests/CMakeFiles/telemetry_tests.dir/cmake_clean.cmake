file(REMOVE_RECURSE
  "CMakeFiles/telemetry_tests.dir/telemetry/exporters_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/exporters_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry/flight_recorder_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/flight_recorder_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry/registry_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/registry_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry/serve_telemetry_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/serve_telemetry_test.cpp.o.d"
  "telemetry_tests"
  "telemetry_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
