
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/util_tests.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/error_test.cpp" "tests/CMakeFiles/util_tests.dir/util/error_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/error_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/math_test.cpp" "tests/CMakeFiles/util_tests.dir/util/math_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/math_test.cpp.o.d"
  "/root/repo/tests/util/properties_test.cpp" "tests/CMakeFiles/util_tests.dir/util/properties_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/properties_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/strings_test.cpp" "tests/CMakeFiles/util_tests.dir/util/strings_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/strings_test.cpp.o.d"
  "/root/repo/tests/util/units_test.cpp" "tests/CMakeFiles/util_tests.dir/util/units_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ghs/util/CMakeFiles/ghs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
