file(REMOVE_RECURSE
  "CMakeFiles/omp_tests.dir/omp/env_test.cpp.o"
  "CMakeFiles/omp_tests.dir/omp/env_test.cpp.o.d"
  "CMakeFiles/omp_tests.dir/omp/heuristics_test.cpp.o"
  "CMakeFiles/omp_tests.dir/omp/heuristics_test.cpp.o.d"
  "CMakeFiles/omp_tests.dir/omp/runtime_test.cpp.o"
  "CMakeFiles/omp_tests.dir/omp/runtime_test.cpp.o.d"
  "omp_tests"
  "omp_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
