# Empty compiler generated dependencies file for omp_tests.
# This may be replaced when dependencies are built.
