file(REMOVE_RECURSE
  "CMakeFiles/serve_tests.dir/serve/chaos_service_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/chaos_service_test.cpp.o.d"
  "CMakeFiles/serve_tests.dir/serve/loadgen_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/loadgen_test.cpp.o.d"
  "CMakeFiles/serve_tests.dir/serve/policy_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/policy_test.cpp.o.d"
  "CMakeFiles/serve_tests.dir/serve/queue_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/queue_test.cpp.o.d"
  "CMakeFiles/serve_tests.dir/serve/service_model_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/service_model_test.cpp.o.d"
  "CMakeFiles/serve_tests.dir/serve/service_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/service_test.cpp.o.d"
  "serve_tests"
  "serve_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
