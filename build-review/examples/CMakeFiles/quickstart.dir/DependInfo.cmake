
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ghs/core/CMakeFiles/ghs_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/omp/CMakeFiles/ghs_omp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/cpu/CMakeFiles/ghs_cpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/workload/CMakeFiles/ghs_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/gpu/CMakeFiles/ghs_gpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/um/CMakeFiles/ghs_um.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/trace/CMakeFiles/ghs_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/mem/CMakeFiles/ghs_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/sim/CMakeFiles/ghs_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/stats/CMakeFiles/ghs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/util/CMakeFiles/ghs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
