# Empty compiler generated dependencies file for roofline.
# This may be replaced when dependencies are built.
