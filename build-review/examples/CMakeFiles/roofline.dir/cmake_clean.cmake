file(REMOVE_RECURSE
  "CMakeFiles/roofline.dir/roofline.cpp.o"
  "CMakeFiles/roofline.dir/roofline.cpp.o.d"
  "roofline"
  "roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
