# Empty dependencies file for what_if_system.
# This may be replaced when dependencies are built.
