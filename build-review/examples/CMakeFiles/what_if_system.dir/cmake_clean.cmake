file(REMOVE_RECURSE
  "CMakeFiles/what_if_system.dir/what_if_system.cpp.o"
  "CMakeFiles/what_if_system.dir/what_if_system.cpp.o.d"
  "what_if_system"
  "what_if_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
