# Empty compiler generated dependencies file for chaos_tour.
# This may be replaced when dependencies are built.
