file(REMOVE_RECURSE
  "CMakeFiles/chaos_tour.dir/chaos_tour.cpp.o"
  "CMakeFiles/chaos_tour.dir/chaos_tour.cpp.o.d"
  "chaos_tour"
  "chaos_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
