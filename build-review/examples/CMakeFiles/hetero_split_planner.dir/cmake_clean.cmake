file(REMOVE_RECURSE
  "CMakeFiles/hetero_split_planner.dir/hetero_split_planner.cpp.o"
  "CMakeFiles/hetero_split_planner.dir/hetero_split_planner.cpp.o.d"
  "hetero_split_planner"
  "hetero_split_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_split_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
