# Empty dependencies file for hetero_split_planner.
# This may be replaced when dependencies are built.
