file(REMOVE_RECURSE
  "CMakeFiles/dot_product.dir/dot_product.cpp.o"
  "CMakeFiles/dot_product.dir/dot_product.cpp.o.d"
  "dot_product"
  "dot_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
