# Empty dependencies file for dot_product.
# This may be replaced when dependencies are built.
