# Empty compiler generated dependencies file for telemetry_tour.
# This may be replaced when dependencies are built.
