file(REMOVE_RECURSE
  "CMakeFiles/telemetry_tour.dir/telemetry_tour.cpp.o"
  "CMakeFiles/telemetry_tour.dir/telemetry_tour.cpp.o.d"
  "telemetry_tour"
  "telemetry_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
