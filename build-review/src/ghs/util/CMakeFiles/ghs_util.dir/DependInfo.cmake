
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ghs/util/cli.cpp" "src/ghs/util/CMakeFiles/ghs_util.dir/cli.cpp.o" "gcc" "src/ghs/util/CMakeFiles/ghs_util.dir/cli.cpp.o.d"
  "/root/repo/src/ghs/util/error.cpp" "src/ghs/util/CMakeFiles/ghs_util.dir/error.cpp.o" "gcc" "src/ghs/util/CMakeFiles/ghs_util.dir/error.cpp.o.d"
  "/root/repo/src/ghs/util/log.cpp" "src/ghs/util/CMakeFiles/ghs_util.dir/log.cpp.o" "gcc" "src/ghs/util/CMakeFiles/ghs_util.dir/log.cpp.o.d"
  "/root/repo/src/ghs/util/math.cpp" "src/ghs/util/CMakeFiles/ghs_util.dir/math.cpp.o" "gcc" "src/ghs/util/CMakeFiles/ghs_util.dir/math.cpp.o.d"
  "/root/repo/src/ghs/util/properties.cpp" "src/ghs/util/CMakeFiles/ghs_util.dir/properties.cpp.o" "gcc" "src/ghs/util/CMakeFiles/ghs_util.dir/properties.cpp.o.d"
  "/root/repo/src/ghs/util/strings.cpp" "src/ghs/util/CMakeFiles/ghs_util.dir/strings.cpp.o" "gcc" "src/ghs/util/CMakeFiles/ghs_util.dir/strings.cpp.o.d"
  "/root/repo/src/ghs/util/units.cpp" "src/ghs/util/CMakeFiles/ghs_util.dir/units.cpp.o" "gcc" "src/ghs/util/CMakeFiles/ghs_util.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
