file(REMOVE_RECURSE
  "CMakeFiles/ghs_util.dir/cli.cpp.o"
  "CMakeFiles/ghs_util.dir/cli.cpp.o.d"
  "CMakeFiles/ghs_util.dir/error.cpp.o"
  "CMakeFiles/ghs_util.dir/error.cpp.o.d"
  "CMakeFiles/ghs_util.dir/log.cpp.o"
  "CMakeFiles/ghs_util.dir/log.cpp.o.d"
  "CMakeFiles/ghs_util.dir/math.cpp.o"
  "CMakeFiles/ghs_util.dir/math.cpp.o.d"
  "CMakeFiles/ghs_util.dir/properties.cpp.o"
  "CMakeFiles/ghs_util.dir/properties.cpp.o.d"
  "CMakeFiles/ghs_util.dir/strings.cpp.o"
  "CMakeFiles/ghs_util.dir/strings.cpp.o.d"
  "CMakeFiles/ghs_util.dir/units.cpp.o"
  "CMakeFiles/ghs_util.dir/units.cpp.o.d"
  "libghs_util.a"
  "libghs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
