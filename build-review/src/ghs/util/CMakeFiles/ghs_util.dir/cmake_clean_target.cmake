file(REMOVE_RECURSE
  "libghs_util.a"
)
