# Empty dependencies file for ghs_util.
# This may be replaced when dependencies are built.
