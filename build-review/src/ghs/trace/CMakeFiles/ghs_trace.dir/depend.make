# Empty dependencies file for ghs_trace.
# This may be replaced when dependencies are built.
