file(REMOVE_RECURSE
  "CMakeFiles/ghs_trace.dir/tracer.cpp.o"
  "CMakeFiles/ghs_trace.dir/tracer.cpp.o.d"
  "libghs_trace.a"
  "libghs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
