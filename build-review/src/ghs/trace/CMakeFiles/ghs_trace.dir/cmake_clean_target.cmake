file(REMOVE_RECURSE
  "libghs_trace.a"
)
