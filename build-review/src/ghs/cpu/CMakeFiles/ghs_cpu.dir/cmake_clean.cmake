file(REMOVE_RECURSE
  "CMakeFiles/ghs_cpu.dir/device.cpp.o"
  "CMakeFiles/ghs_cpu.dir/device.cpp.o.d"
  "libghs_cpu.a"
  "libghs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
