# Empty compiler generated dependencies file for ghs_cpu.
# This may be replaced when dependencies are built.
