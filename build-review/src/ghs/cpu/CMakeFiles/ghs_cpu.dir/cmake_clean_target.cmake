file(REMOVE_RECURSE
  "libghs_cpu.a"
)
