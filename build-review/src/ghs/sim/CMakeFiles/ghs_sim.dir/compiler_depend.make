# Empty compiler generated dependencies file for ghs_sim.
# This may be replaced when dependencies are built.
