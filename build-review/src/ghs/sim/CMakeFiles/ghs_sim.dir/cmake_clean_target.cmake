file(REMOVE_RECURSE
  "libghs_sim.a"
)
