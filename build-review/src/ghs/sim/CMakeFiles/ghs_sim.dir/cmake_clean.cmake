file(REMOVE_RECURSE
  "CMakeFiles/ghs_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ghs_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ghs_sim.dir/fluid.cpp.o"
  "CMakeFiles/ghs_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/ghs_sim.dir/server.cpp.o"
  "CMakeFiles/ghs_sim.dir/server.cpp.o.d"
  "CMakeFiles/ghs_sim.dir/simulator.cpp.o"
  "CMakeFiles/ghs_sim.dir/simulator.cpp.o.d"
  "libghs_sim.a"
  "libghs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
