
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ghs/telemetry/exporters.cpp" "src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/exporters.cpp.o" "gcc" "src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/exporters.cpp.o.d"
  "/root/repo/src/ghs/telemetry/flight_recorder.cpp" "src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/flight_recorder.cpp.o" "gcc" "src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/flight_recorder.cpp.o.d"
  "/root/repo/src/ghs/telemetry/registry.cpp" "src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/registry.cpp.o" "gcc" "src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ghs/stats/CMakeFiles/ghs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/util/CMakeFiles/ghs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
