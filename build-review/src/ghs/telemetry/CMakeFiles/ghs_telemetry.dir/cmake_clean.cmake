file(REMOVE_RECURSE
  "CMakeFiles/ghs_telemetry.dir/exporters.cpp.o"
  "CMakeFiles/ghs_telemetry.dir/exporters.cpp.o.d"
  "CMakeFiles/ghs_telemetry.dir/flight_recorder.cpp.o"
  "CMakeFiles/ghs_telemetry.dir/flight_recorder.cpp.o.d"
  "CMakeFiles/ghs_telemetry.dir/registry.cpp.o"
  "CMakeFiles/ghs_telemetry.dir/registry.cpp.o.d"
  "libghs_telemetry.a"
  "libghs_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
