# Empty dependencies file for ghs_telemetry.
# This may be replaced when dependencies are built.
