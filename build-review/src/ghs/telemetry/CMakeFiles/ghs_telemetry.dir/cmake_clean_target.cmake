file(REMOVE_RECURSE
  "libghs_telemetry.a"
)
