file(REMOVE_RECURSE
  "CMakeFiles/ghs_core.dir/config_io.cpp.o"
  "CMakeFiles/ghs_core.dir/config_io.cpp.o.d"
  "CMakeFiles/ghs_core.dir/platform.cpp.o"
  "CMakeFiles/ghs_core.dir/platform.cpp.o.d"
  "CMakeFiles/ghs_core.dir/reduce.cpp.o"
  "CMakeFiles/ghs_core.dir/reduce.cpp.o.d"
  "CMakeFiles/ghs_core.dir/sweep.cpp.o"
  "CMakeFiles/ghs_core.dir/sweep.cpp.o.d"
  "CMakeFiles/ghs_core.dir/system_config.cpp.o"
  "CMakeFiles/ghs_core.dir/system_config.cpp.o.d"
  "CMakeFiles/ghs_core.dir/tuner.cpp.o"
  "CMakeFiles/ghs_core.dir/tuner.cpp.o.d"
  "CMakeFiles/ghs_core.dir/verify.cpp.o"
  "CMakeFiles/ghs_core.dir/verify.cpp.o.d"
  "libghs_core.a"
  "libghs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
