# Empty dependencies file for ghs_core.
# This may be replaced when dependencies are built.
