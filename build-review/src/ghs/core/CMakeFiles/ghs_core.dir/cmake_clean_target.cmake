file(REMOVE_RECURSE
  "libghs_core.a"
)
