
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ghs/core/config_io.cpp" "src/ghs/core/CMakeFiles/ghs_core.dir/config_io.cpp.o" "gcc" "src/ghs/core/CMakeFiles/ghs_core.dir/config_io.cpp.o.d"
  "/root/repo/src/ghs/core/platform.cpp" "src/ghs/core/CMakeFiles/ghs_core.dir/platform.cpp.o" "gcc" "src/ghs/core/CMakeFiles/ghs_core.dir/platform.cpp.o.d"
  "/root/repo/src/ghs/core/reduce.cpp" "src/ghs/core/CMakeFiles/ghs_core.dir/reduce.cpp.o" "gcc" "src/ghs/core/CMakeFiles/ghs_core.dir/reduce.cpp.o.d"
  "/root/repo/src/ghs/core/sweep.cpp" "src/ghs/core/CMakeFiles/ghs_core.dir/sweep.cpp.o" "gcc" "src/ghs/core/CMakeFiles/ghs_core.dir/sweep.cpp.o.d"
  "/root/repo/src/ghs/core/system_config.cpp" "src/ghs/core/CMakeFiles/ghs_core.dir/system_config.cpp.o" "gcc" "src/ghs/core/CMakeFiles/ghs_core.dir/system_config.cpp.o.d"
  "/root/repo/src/ghs/core/tuner.cpp" "src/ghs/core/CMakeFiles/ghs_core.dir/tuner.cpp.o" "gcc" "src/ghs/core/CMakeFiles/ghs_core.dir/tuner.cpp.o.d"
  "/root/repo/src/ghs/core/verify.cpp" "src/ghs/core/CMakeFiles/ghs_core.dir/verify.cpp.o" "gcc" "src/ghs/core/CMakeFiles/ghs_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ghs/omp/CMakeFiles/ghs_omp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/workload/CMakeFiles/ghs_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/stats/CMakeFiles/ghs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/cpu/CMakeFiles/ghs_cpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/gpu/CMakeFiles/ghs_gpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/um/CMakeFiles/ghs_um.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/trace/CMakeFiles/ghs_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/mem/CMakeFiles/ghs_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/sim/CMakeFiles/ghs_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/util/CMakeFiles/ghs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
