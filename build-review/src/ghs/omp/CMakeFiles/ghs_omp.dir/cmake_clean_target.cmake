file(REMOVE_RECURSE
  "libghs_omp.a"
)
