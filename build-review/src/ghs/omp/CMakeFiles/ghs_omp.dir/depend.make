# Empty dependencies file for ghs_omp.
# This may be replaced when dependencies are built.
