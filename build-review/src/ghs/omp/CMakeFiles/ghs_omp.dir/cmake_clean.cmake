file(REMOVE_RECURSE
  "CMakeFiles/ghs_omp.dir/env.cpp.o"
  "CMakeFiles/ghs_omp.dir/env.cpp.o.d"
  "CMakeFiles/ghs_omp.dir/heuristics.cpp.o"
  "CMakeFiles/ghs_omp.dir/heuristics.cpp.o.d"
  "CMakeFiles/ghs_omp.dir/runtime.cpp.o"
  "CMakeFiles/ghs_omp.dir/runtime.cpp.o.d"
  "libghs_omp.a"
  "libghs_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
