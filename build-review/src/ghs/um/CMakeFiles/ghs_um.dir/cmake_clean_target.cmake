file(REMOVE_RECURSE
  "libghs_um.a"
)
