# Empty compiler generated dependencies file for ghs_um.
# This may be replaced when dependencies are built.
