file(REMOVE_RECURSE
  "CMakeFiles/ghs_um.dir/manager.cpp.o"
  "CMakeFiles/ghs_um.dir/manager.cpp.o.d"
  "libghs_um.a"
  "libghs_um.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_um.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
