# CMake generated Testfile for 
# Source directory: /root/repo/src/ghs/gpu
# Build directory: /root/repo/build-review/src/ghs/gpu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
