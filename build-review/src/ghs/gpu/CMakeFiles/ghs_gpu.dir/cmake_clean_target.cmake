file(REMOVE_RECURSE
  "libghs_gpu.a"
)
