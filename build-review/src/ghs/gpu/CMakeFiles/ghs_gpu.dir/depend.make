# Empty dependencies file for ghs_gpu.
# This may be replaced when dependencies are built.
