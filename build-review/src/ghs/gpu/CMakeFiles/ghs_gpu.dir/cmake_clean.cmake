file(REMOVE_RECURSE
  "CMakeFiles/ghs_gpu.dir/coalescing.cpp.o"
  "CMakeFiles/ghs_gpu.dir/coalescing.cpp.o.d"
  "CMakeFiles/ghs_gpu.dir/device.cpp.o"
  "CMakeFiles/ghs_gpu.dir/device.cpp.o.d"
  "CMakeFiles/ghs_gpu.dir/occupancy.cpp.o"
  "CMakeFiles/ghs_gpu.dir/occupancy.cpp.o.d"
  "libghs_gpu.a"
  "libghs_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
