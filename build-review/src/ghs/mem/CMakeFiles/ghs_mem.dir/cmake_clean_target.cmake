file(REMOVE_RECURSE
  "libghs_mem.a"
)
