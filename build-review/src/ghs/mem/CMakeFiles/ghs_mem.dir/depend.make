# Empty dependencies file for ghs_mem.
# This may be replaced when dependencies are built.
