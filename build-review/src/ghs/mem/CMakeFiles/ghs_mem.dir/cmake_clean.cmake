file(REMOVE_RECURSE
  "CMakeFiles/ghs_mem.dir/topology.cpp.o"
  "CMakeFiles/ghs_mem.dir/topology.cpp.o.d"
  "CMakeFiles/ghs_mem.dir/transfer.cpp.o"
  "CMakeFiles/ghs_mem.dir/transfer.cpp.o.d"
  "libghs_mem.a"
  "libghs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
