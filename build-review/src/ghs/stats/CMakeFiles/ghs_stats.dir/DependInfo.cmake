
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ghs/stats/chart.cpp" "src/ghs/stats/CMakeFiles/ghs_stats.dir/chart.cpp.o" "gcc" "src/ghs/stats/CMakeFiles/ghs_stats.dir/chart.cpp.o.d"
  "/root/repo/src/ghs/stats/series.cpp" "src/ghs/stats/CMakeFiles/ghs_stats.dir/series.cpp.o" "gcc" "src/ghs/stats/CMakeFiles/ghs_stats.dir/series.cpp.o.d"
  "/root/repo/src/ghs/stats/summary.cpp" "src/ghs/stats/CMakeFiles/ghs_stats.dir/summary.cpp.o" "gcc" "src/ghs/stats/CMakeFiles/ghs_stats.dir/summary.cpp.o.d"
  "/root/repo/src/ghs/stats/table.cpp" "src/ghs/stats/CMakeFiles/ghs_stats.dir/table.cpp.o" "gcc" "src/ghs/stats/CMakeFiles/ghs_stats.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ghs/util/CMakeFiles/ghs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
