# Empty dependencies file for ghs_stats.
# This may be replaced when dependencies are built.
