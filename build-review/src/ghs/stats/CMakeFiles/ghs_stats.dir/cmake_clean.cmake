file(REMOVE_RECURSE
  "CMakeFiles/ghs_stats.dir/chart.cpp.o"
  "CMakeFiles/ghs_stats.dir/chart.cpp.o.d"
  "CMakeFiles/ghs_stats.dir/series.cpp.o"
  "CMakeFiles/ghs_stats.dir/series.cpp.o.d"
  "CMakeFiles/ghs_stats.dir/summary.cpp.o"
  "CMakeFiles/ghs_stats.dir/summary.cpp.o.d"
  "CMakeFiles/ghs_stats.dir/table.cpp.o"
  "CMakeFiles/ghs_stats.dir/table.cpp.o.d"
  "libghs_stats.a"
  "libghs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
