file(REMOVE_RECURSE
  "libghs_stats.a"
)
