file(REMOVE_RECURSE
  "libghs_fault.a"
)
