
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ghs/fault/breaker.cpp" "src/ghs/fault/CMakeFiles/ghs_fault.dir/breaker.cpp.o" "gcc" "src/ghs/fault/CMakeFiles/ghs_fault.dir/breaker.cpp.o.d"
  "/root/repo/src/ghs/fault/injector.cpp" "src/ghs/fault/CMakeFiles/ghs_fault.dir/injector.cpp.o" "gcc" "src/ghs/fault/CMakeFiles/ghs_fault.dir/injector.cpp.o.d"
  "/root/repo/src/ghs/fault/plan.cpp" "src/ghs/fault/CMakeFiles/ghs_fault.dir/plan.cpp.o" "gcc" "src/ghs/fault/CMakeFiles/ghs_fault.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ghs/telemetry/CMakeFiles/ghs_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/stats/CMakeFiles/ghs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ghs/util/CMakeFiles/ghs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
