# Empty dependencies file for ghs_fault.
# This may be replaced when dependencies are built.
