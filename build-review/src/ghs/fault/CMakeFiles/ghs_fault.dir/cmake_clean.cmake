file(REMOVE_RECURSE
  "CMakeFiles/ghs_fault.dir/breaker.cpp.o"
  "CMakeFiles/ghs_fault.dir/breaker.cpp.o.d"
  "CMakeFiles/ghs_fault.dir/injector.cpp.o"
  "CMakeFiles/ghs_fault.dir/injector.cpp.o.d"
  "CMakeFiles/ghs_fault.dir/plan.cpp.o"
  "CMakeFiles/ghs_fault.dir/plan.cpp.o.d"
  "libghs_fault.a"
  "libghs_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
