# Empty dependencies file for ghs_workload.
# This may be replaced when dependencies are built.
