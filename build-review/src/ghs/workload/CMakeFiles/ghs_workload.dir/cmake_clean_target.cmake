file(REMOVE_RECURSE
  "libghs_workload.a"
)
