file(REMOVE_RECURSE
  "CMakeFiles/ghs_workload.dir/cases.cpp.o"
  "CMakeFiles/ghs_workload.dir/cases.cpp.o.d"
  "CMakeFiles/ghs_workload.dir/generator.cpp.o"
  "CMakeFiles/ghs_workload.dir/generator.cpp.o.d"
  "CMakeFiles/ghs_workload.dir/host_array.cpp.o"
  "CMakeFiles/ghs_workload.dir/host_array.cpp.o.d"
  "libghs_workload.a"
  "libghs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
