# CMake generated Testfile for 
# Source directory: /root/repo/src/ghs/workload
# Build directory: /root/repo/build-review/src/ghs/workload
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
