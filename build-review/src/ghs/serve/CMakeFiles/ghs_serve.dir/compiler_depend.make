# Empty compiler generated dependencies file for ghs_serve.
# This may be replaced when dependencies are built.
