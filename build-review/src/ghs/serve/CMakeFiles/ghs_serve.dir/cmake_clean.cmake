file(REMOVE_RECURSE
  "CMakeFiles/ghs_serve.dir/device_pool.cpp.o"
  "CMakeFiles/ghs_serve.dir/device_pool.cpp.o.d"
  "CMakeFiles/ghs_serve.dir/loadgen.cpp.o"
  "CMakeFiles/ghs_serve.dir/loadgen.cpp.o.d"
  "CMakeFiles/ghs_serve.dir/policy.cpp.o"
  "CMakeFiles/ghs_serve.dir/policy.cpp.o.d"
  "CMakeFiles/ghs_serve.dir/queue.cpp.o"
  "CMakeFiles/ghs_serve.dir/queue.cpp.o.d"
  "CMakeFiles/ghs_serve.dir/service.cpp.o"
  "CMakeFiles/ghs_serve.dir/service.cpp.o.d"
  "CMakeFiles/ghs_serve.dir/service_model.cpp.o"
  "CMakeFiles/ghs_serve.dir/service_model.cpp.o.d"
  "libghs_serve.a"
  "libghs_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
