file(REMOVE_RECURSE
  "libghs_serve.a"
)
