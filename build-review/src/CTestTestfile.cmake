# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("ghs/util")
subdirs("ghs/stats")
subdirs("ghs/telemetry")
subdirs("ghs/fault")
subdirs("ghs/trace")
subdirs("ghs/sim")
subdirs("ghs/mem")
subdirs("ghs/um")
subdirs("ghs/gpu")
subdirs("ghs/cpu")
subdirs("ghs/omp")
subdirs("ghs/workload")
subdirs("ghs/core")
subdirs("ghs/serve")
