# Empty dependencies file for ablation_cpu_schedule.
# This may be replaced when dependencies are built.
