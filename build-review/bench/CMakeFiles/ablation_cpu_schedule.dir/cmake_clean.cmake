file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpu_schedule.dir/ablation_cpu_schedule.cpp.o"
  "CMakeFiles/ablation_cpu_schedule.dir/ablation_cpu_schedule.cpp.o.d"
  "ablation_cpu_schedule"
  "ablation_cpu_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
