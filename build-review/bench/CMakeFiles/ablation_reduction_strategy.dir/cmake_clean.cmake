file(REMOVE_RECURSE
  "CMakeFiles/ablation_reduction_strategy.dir/ablation_reduction_strategy.cpp.o"
  "CMakeFiles/ablation_reduction_strategy.dir/ablation_reduction_strategy.cpp.o.d"
  "ablation_reduction_strategy"
  "ablation_reduction_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reduction_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
