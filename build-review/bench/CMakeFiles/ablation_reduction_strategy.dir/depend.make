# Empty dependencies file for ablation_reduction_strategy.
# This may be replaced when dependencies are built.
