# Empty compiler generated dependencies file for fig5_um_a2_speedup.
# This may be replaced when dependencies are built.
