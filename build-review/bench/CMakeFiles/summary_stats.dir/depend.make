# Empty dependencies file for summary_stats.
# This may be replaced when dependencies are built.
