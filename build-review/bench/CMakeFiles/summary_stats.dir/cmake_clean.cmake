file(REMOVE_RECURSE
  "CMakeFiles/summary_stats.dir/summary_stats.cpp.o"
  "CMakeFiles/summary_stats.dir/summary_stats.cpp.o.d"
  "summary_stats"
  "summary_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
