# Empty compiler generated dependencies file for fig2a_um_a1_baseline.
# This may be replaced when dependencies are built.
