file(REMOVE_RECURSE
  "CMakeFiles/fig2a_um_a1_baseline.dir/fig2a_um_a1_baseline.cpp.o"
  "CMakeFiles/fig2a_um_a1_baseline.dir/fig2a_um_a1_baseline.cpp.o.d"
  "fig2a_um_a1_baseline"
  "fig2a_um_a1_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_um_a1_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
