# Empty dependencies file for certify_reproduction.
# This may be replaced when dependencies are built.
