file(REMOVE_RECURSE
  "CMakeFiles/certify_reproduction.dir/certify_reproduction.cpp.o"
  "CMakeFiles/certify_reproduction.dir/certify_reproduction.cpp.o.d"
  "certify_reproduction"
  "certify_reproduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_reproduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
