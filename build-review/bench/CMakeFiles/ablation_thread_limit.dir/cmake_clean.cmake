file(REMOVE_RECURSE
  "CMakeFiles/ablation_thread_limit.dir/ablation_thread_limit.cpp.o"
  "CMakeFiles/ablation_thread_limit.dir/ablation_thread_limit.cpp.o.d"
  "ablation_thread_limit"
  "ablation_thread_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thread_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
