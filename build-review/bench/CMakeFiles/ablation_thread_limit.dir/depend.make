# Empty dependencies file for ablation_thread_limit.
# This may be replaced when dependencies are built.
