# Empty dependencies file for table1_baseline_vs_optimized.
# This may be replaced when dependencies are built.
