file(REMOVE_RECURSE
  "CMakeFiles/table1_baseline_vs_optimized.dir/table1_baseline_vs_optimized.cpp.o"
  "CMakeFiles/table1_baseline_vs_optimized.dir/table1_baseline_vs_optimized.cpp.o.d"
  "table1_baseline_vs_optimized"
  "table1_baseline_vs_optimized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_baseline_vs_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
