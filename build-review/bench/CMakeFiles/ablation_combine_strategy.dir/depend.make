# Empty dependencies file for ablation_combine_strategy.
# This may be replaced when dependencies are built.
