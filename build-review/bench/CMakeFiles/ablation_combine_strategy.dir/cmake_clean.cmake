file(REMOVE_RECURSE
  "CMakeFiles/ablation_combine_strategy.dir/ablation_combine_strategy.cpp.o"
  "CMakeFiles/ablation_combine_strategy.dir/ablation_combine_strategy.cpp.o.d"
  "ablation_combine_strategy"
  "ablation_combine_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combine_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
