# Empty dependencies file for fig4b_um_a2_optimized.
# This may be replaced when dependencies are built.
