file(REMOVE_RECURSE
  "CMakeFiles/fig4b_um_a2_optimized.dir/fig4b_um_a2_optimized.cpp.o"
  "CMakeFiles/fig4b_um_a2_optimized.dir/fig4b_um_a2_optimized.cpp.o.d"
  "fig4b_um_a2_optimized"
  "fig4b_um_a2_optimized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_um_a2_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
