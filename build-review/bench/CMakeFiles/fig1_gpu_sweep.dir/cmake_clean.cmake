file(REMOVE_RECURSE
  "CMakeFiles/fig1_gpu_sweep.dir/fig1_gpu_sweep.cpp.o"
  "CMakeFiles/fig1_gpu_sweep.dir/fig1_gpu_sweep.cpp.o.d"
  "fig1_gpu_sweep"
  "fig1_gpu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gpu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
