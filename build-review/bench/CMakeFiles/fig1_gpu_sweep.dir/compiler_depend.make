# Empty compiler generated dependencies file for fig1_gpu_sweep.
# This may be replaced when dependencies are built.
