file(REMOVE_RECURSE
  "CMakeFiles/ablation_grid_heuristic.dir/ablation_grid_heuristic.cpp.o"
  "CMakeFiles/ablation_grid_heuristic.dir/ablation_grid_heuristic.cpp.o.d"
  "ablation_grid_heuristic"
  "ablation_grid_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grid_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
