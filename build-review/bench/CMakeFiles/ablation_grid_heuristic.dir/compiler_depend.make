# Empty compiler generated dependencies file for ablation_grid_heuristic.
# This may be replaced when dependencies are built.
