file(REMOVE_RECURSE
  "CMakeFiles/ablation_um_policy.dir/ablation_um_policy.cpp.o"
  "CMakeFiles/ablation_um_policy.dir/ablation_um_policy.cpp.o.d"
  "ablation_um_policy"
  "ablation_um_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_um_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
