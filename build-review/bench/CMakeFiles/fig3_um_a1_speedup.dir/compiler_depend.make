# Empty compiler generated dependencies file for fig3_um_a1_speedup.
# This may be replaced when dependencies are built.
