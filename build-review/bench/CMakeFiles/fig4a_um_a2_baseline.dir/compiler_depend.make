# Empty compiler generated dependencies file for fig4a_um_a2_baseline.
# This may be replaced when dependencies are built.
