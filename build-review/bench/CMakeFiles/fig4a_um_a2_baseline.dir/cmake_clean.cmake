file(REMOVE_RECURSE
  "CMakeFiles/fig4a_um_a2_baseline.dir/fig4a_um_a2_baseline.cpp.o"
  "CMakeFiles/fig4a_um_a2_baseline.dir/fig4a_um_a2_baseline.cpp.o.d"
  "fig4a_um_a2_baseline"
  "fig4a_um_a2_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_um_a2_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
