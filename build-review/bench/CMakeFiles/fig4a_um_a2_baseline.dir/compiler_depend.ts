# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4a_um_a2_baseline.
