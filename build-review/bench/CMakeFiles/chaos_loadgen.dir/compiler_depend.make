# Empty compiler generated dependencies file for chaos_loadgen.
# This may be replaced when dependencies are built.
