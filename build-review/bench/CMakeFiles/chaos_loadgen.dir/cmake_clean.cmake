file(REMOVE_RECURSE
  "CMakeFiles/chaos_loadgen.dir/chaos_loadgen.cpp.o"
  "CMakeFiles/chaos_loadgen.dir/chaos_loadgen.cpp.o.d"
  "chaos_loadgen"
  "chaos_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
