file(REMOVE_RECURSE
  "CMakeFiles/fig2b_um_a1_optimized.dir/fig2b_um_a1_optimized.cpp.o"
  "CMakeFiles/fig2b_um_a1_optimized.dir/fig2b_um_a1_optimized.cpp.o.d"
  "fig2b_um_a1_optimized"
  "fig2b_um_a1_optimized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_um_a1_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
