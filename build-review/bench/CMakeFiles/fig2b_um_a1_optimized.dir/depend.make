# Empty dependencies file for fig2b_um_a1_optimized.
# This may be replaced when dependencies are built.
