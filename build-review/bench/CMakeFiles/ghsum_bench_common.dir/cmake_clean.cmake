file(REMOVE_RECURSE
  "CMakeFiles/ghsum_bench_common.dir/common.cpp.o"
  "CMakeFiles/ghsum_bench_common.dir/common.cpp.o.d"
  "CMakeFiles/ghsum_bench_common.dir/um_bench.cpp.o"
  "CMakeFiles/ghsum_bench_common.dir/um_bench.cpp.o.d"
  "libghsum_bench_common.a"
  "libghsum_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghsum_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
