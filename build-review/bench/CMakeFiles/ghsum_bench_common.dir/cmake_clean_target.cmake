file(REMOVE_RECURSE
  "libghsum_bench_common.a"
)
