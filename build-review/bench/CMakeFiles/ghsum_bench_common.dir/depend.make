# Empty dependencies file for ghsum_bench_common.
# This may be replaced when dependencies are built.
