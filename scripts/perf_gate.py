#!/usr/bin/env python3
"""Performance gate: run canonical benches and compare headline metrics
against the checked-in baseline (bench/baselines/BENCH_baseline.json).

The simulator is deterministic, so baseline numbers are machine-independent
and exact; the tolerance only absorbs intended model retunes small enough
not to matter. Typical uses:

  # Gate (CI and pre-commit): exit 2 when any metric regresses.
  $ scripts/perf_gate.py --bindir build/bench

  # Refresh after an intended performance change: rerun every bench and
  # rewrite the baseline values in place, then commit the diff with a
  # sentence in the PR body saying why the numbers moved.
  $ scripts/perf_gate.py --bindir build/bench --update

Baseline format: {"tolerance": T, "benches": [{"name", "id"?, "args",
"format", "metrics": [...]}]}. "format" selects the stdout parser: "json"
walks dotted paths (list indices as integers) through the bench's JSON
report; "csv" aggregates every numeric cell and offers the paths "max" and
"mean". "id" names the entry for --only when one binary appears under
several argument sets (defaults to "name").

Two metric kinds:

  {"path", "value", "higher_is_better"}            kind: "regression"
      Deterministic simulator output; compared exactly against "value"
      within the relative tolerance. --update rewrites "value".

  {"path", "kind": "lower_bound", "min_value"}     wall-clock floors
      Machine-dependent throughput (e.g. the serve_loadgen --perf
      section). Fails only below the absolute floor "min_value", which is
      set with generous headroom so slow CI machines still pass; the
      tolerance does not apply. --update refreshes the informational
      "observed" field but never moves the floor — raise it by hand when
      the engine genuinely gets faster.

Exit status: 0 when every metric is inside tolerance, 2 when any metric
regressed (the gate), 1 when a bench is missing, fails to run, or emits
output the baseline paths cannot walk.
"""

import argparse
import json
import os
import subprocess
import sys


def fail(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(1)


def load_baseline(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read baseline {path}: {err}")
    if "benches" not in baseline:
        fail(f"{path} is not a perf baseline (missing 'benches')")
    return baseline


def run_bench(bindir, bench):
    binary = os.path.join(bindir, bench["name"])
    if not os.path.exists(binary):
        fail(f"bench binary not found: {binary} (build it first)")
    command = [binary] + list(bench.get("args", []))
    try:
        result = subprocess.run(
            command, capture_output=True, text=True, check=True)
    except subprocess.CalledProcessError as err:
        fail(f"{' '.join(command)} exited {err.returncode}:\n{err.stderr}")
    return result.stdout


def walk_json(report, path):
    node = report
    for part in path.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        elif isinstance(node, dict) and part in node:
            node = node[part]
        else:
            fail(f"path '{path}' does not resolve in the bench report "
                 f"(stuck at '{part}')")
    if not isinstance(node, (int, float)):
        fail(f"path '{path}' resolves to {type(node).__name__}, not a number")
    return float(node)


def csv_cells(stdout):
    """Numeric cells of every CSV row, excluding the first column (the
    bench CSVs put the x-axis — team counts — there, not a metric)."""
    cells = []
    for line in stdout.splitlines():
        for token in line.split(",")[1:]:
            try:
                cells.append(float(token))
            except ValueError:
                continue
    if not cells:
        fail("csv bench emitted no numeric cells")
    return cells


def extract(stdout, bench, path):
    if bench.get("format", "json") == "csv":
        cells = csv_cells(stdout)
        if path == "max":
            return max(cells)
        if path == "mean":
            return sum(cells) / len(cells)
        fail(f"unknown csv aggregate '{path}' (max|mean)")
    try:
        report = json.loads(stdout)
    except json.JSONDecodeError as err:
        fail(f"bench {bench['name']} did not emit JSON: {err}")
    return walk_json(report, path)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--baseline", default="bench/baselines/BENCH_baseline.json",
        help="baseline file (default: bench/baselines/BENCH_baseline.json)")
    parser.add_argument(
        "--bindir", default="build/bench",
        help="directory holding the bench binaries (default: build/bench)")
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="override the baseline's tolerance (relative, e.g. 0.02)")
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite baseline values from this run instead of gating")
    parser.add_argument(
        "--only", default=None, metavar="ID",
        help="run only the baseline entry whose id (or name) matches")
    args = parser.parse_args()

    baseline = load_baseline(args.baseline)
    tolerance = (args.tolerance if args.tolerance is not None
                 else float(baseline.get("tolerance", 0.02)))
    if tolerance < 0:
        fail("--tolerance must be >= 0")

    benches = baseline["benches"]
    if args.only is not None:
        benches = [b for b in benches
                   if b.get("id", b["name"]) == args.only]
        if not benches:
            known = ", ".join(b.get("id", b["name"])
                              for b in baseline["benches"])
            fail(f"--only '{args.only}' matches no baseline entry "
                 f"(known: {known})")

    regressions = []
    checked = 0
    for bench in benches:
        label = bench.get("id", bench["name"])
        stdout = run_bench(args.bindir, bench)
        for metric in bench["metrics"]:
            current = extract(stdout, bench, metric["path"])
            checked += 1
            kind = metric.get("kind", "regression")
            if kind == "lower_bound":
                if args.update:
                    metric["observed"] = round(current, 6)
                    continue
                floor = float(metric["min_value"])
                bad = current < floor
                status = "REGRESSED" if bad else "ok"
                print(f"{status:9s} {label} {metric['path']}: {current:g} "
                      f"(floor {floor:g}, wall-clock lower bound)")
                if bad:
                    regressions.append(
                        f"{label} {metric['path']}: {current:g} below "
                        f"floor {floor:g}")
                continue
            if kind != "regression":
                fail(f"{label} {metric['path']}: unknown metric kind "
                     f"'{kind}' (regression|lower_bound)")
            if args.update:
                metric["value"] = round(current, 6)
                continue
            recorded = float(metric["value"])
            higher = bool(metric.get("higher_is_better", True))
            if higher:
                floor = recorded * (1.0 - tolerance)
                bad = current < floor
                bound = f">= {floor:g}"
            else:
                ceiling = recorded * (1.0 + tolerance)
                bad = current > ceiling
                bound = f"<= {ceiling:g}"
            status = "REGRESSED" if bad else "ok"
            print(f"{status:9s} {label} {metric['path']}: "
                  f"{current:g} (baseline {recorded:g}, need {bound})")
            if bad:
                regressions.append(
                    f"{label} {metric['path']}: {current:g} vs "
                    f"baseline {recorded:g} (tolerance {tolerance:.1%})")

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(f"baseline refreshed: {checked} metric(s) -> {args.baseline}")
        return 0

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{tolerance:.1%}:")
        for line in regressions:
            print(f"  {line}")
        return 2

    print(f"\nperf gate passed: {checked} metric(s) within {tolerance:.1%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
