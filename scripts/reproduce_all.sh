#!/usr/bin/env bash
# Reproduces every table and figure of the paper at the full protocol
# (N = 200 where the metric depends on it) and writes the outputs under
# results/. Run from the repository root after building.
set -euo pipefail
BUILD=${1:-build}
OUT=results
mkdir -p "$OUT"

run() {
  local name=$1; shift
  echo "== $name =="
  "$@" | tee "$OUT/$name.txt"
}

run table1   "$BUILD/bench/table1_baseline_vs_optimized" --iters=200
run fig1     "$BUILD/bench/fig1_gpu_sweep" --iters=200
run fig2a    "$BUILD/bench/fig2a_um_a1_baseline" --iters=200
run fig2b    "$BUILD/bench/fig2b_um_a1_optimized" --iters=200
run fig3     "$BUILD/bench/fig3_um_a1_speedup" --iters=200
run fig4a    "$BUILD/bench/fig4a_um_a2_baseline" --iters=200
run fig4b    "$BUILD/bench/fig4b_um_a2_optimized" --iters=200
run fig5     "$BUILD/bench/fig5_um_a2_speedup" --iters=200
run summary  "$BUILD/bench/summary_stats" --iters=200
run ablation_grid     "$BUILD/bench/ablation_grid_heuristic"
run ablation_combine  "$BUILD/bench/ablation_combine_strategy"
run ablation_strategy "$BUILD/bench/ablation_reduction_strategy"
run ablation_um       "$BUILD/bench/ablation_um_policy"
run ablation_prefetch "$BUILD/bench/ablation_prefetch"
run ablation_schedule "$BUILD/bench/ablation_cpu_schedule"
echo "all outputs in $OUT/"
