#!/usr/bin/env bash
# Full local gate: build the Release and the ASan+UBSan configurations and
# run the test suite under both. Run from the repository root:
#
#   $ scripts/check.sh            # both configs
#   $ scripts/check.sh release    # just the plain build
#   $ scripts/check.sh asan       # just the sanitized build
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
configs=("${1:-release}")
if [[ $# -eq 0 ]]; then
  configs=(release asan)
fi

for config in "${configs[@]}"; do
  case "$config" in
    release)
      dir=build
      flags=(-DCMAKE_BUILD_TYPE=Release -DGHS_SANITIZE=OFF)
      ;;
    asan)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      ;;
    *)
      echo "unknown config '$config' (release|asan)" >&2
      exit 2
      ;;
  esac
  echo "==> configure $config"
  cmake -B "$dir" -S . "${flags[@]}"
  echo "==> build $config"
  cmake --build "$dir" -j "$jobs"
  echo "==> test $config"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
done
echo "==> all green"
