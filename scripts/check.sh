#!/usr/bin/env bash
# Full local gate: build the Release and the ASan+UBSan configurations and
# run the test suite under both. Run from the repository root:
#
#   $ scripts/check.sh            # both configs
#   $ scripts/check.sh release    # just the plain build
#   $ scripts/check.sh asan       # just the sanitized build
#   $ scripts/check.sh telemetry  # just the telemetry suite under ASan+UBSan
#                                 # (fast gate for the registry's
#                                 # concurrency contract)
#   $ scripts/check.sh chaos      # fault-injection suite under ASan+UBSan
#                                 # (breaker/injector/chaos-service tests)
#   $ scripts/check.sh slo        # tracing + SLO suite under ASan+UBSan
#                                 # (span trees, exporters, burn-rate math)
#   $ scripts/check.sh cluster    # fleet suite under ASan+UBSan (router,
#                                 # ring, spill/steal, passthrough
#                                 # equivalence)
#   $ scripts/check.sh tsdb       # time-series suite under ASan+UBSan, then
#                                 # a same-seed cluster_loadgen --series-out
#                                 # byte-identity smoke checked with
#                                 # metrics_diff.py --series
#   $ scripts/check.sh membership # failure-domain suites under ASan+UBSan
#                                 # (table/journal/detector + cluster crash,
#                                 # drain, replay), then crash-schedule
#                                 # byte-identity and exit-2 flag-validation
#                                 # smokes on cluster_loadgen
#   $ scripts/check.sh profile    # profiling/attribution suites under
#                                 # ASan+UBSan, then profiler-on determinism
#                                 # + profiler-off snapshot byte-identity,
#                                 # conservation smokes, exit-2 flag
#                                 # validation, and the instrument-name lint
#   $ scripts/check.sh perf       # Release event-core throughput gate only:
#                                 # a 10^5-job serve_loadgen smoke with
#                                 # --perf, then the serve_perf wall-clock
#                                 # lower bounds (docs/PERFORMANCE.md)
#
# The release config also runs scripts/perf_gate.py against the checked-in
# bench baseline after the tests pass. The asan config exercises the same
# arena-backed event queues (heap and calendar) under ASan+UBSan via the
# sim and serve suites.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
configs=("${1:-release}")
if [[ $# -eq 0 ]]; then
  configs=(release asan)
fi

for config in "${configs[@]}"; do
  target=""
  test_regex=""
  case "$config" in
    release)
      dir=build
      flags=(-DCMAKE_BUILD_TYPE=Release -DGHS_SANITIZE=OFF)
      ;;
    asan)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      ;;
    telemetry)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      target=telemetry_tests
      test_regex=telemetry_tests
      ;;
    chaos)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      target="fault_tests serve_tests"
      test_regex="fault_tests|serve_tests"
      ;;
    slo)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      target="trace_tests slo_tests"
      test_regex="trace_tests|slo_tests"
      ;;
    cluster)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      target=cluster_tests
      test_regex=cluster_tests
      ;;
    tsdb)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      target="timeseries_tests cluster_loadgen"
      test_regex=timeseries_tests
      ;;
    membership)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      target="membership_tests cluster_tests cluster_loadgen"
      test_regex="membership_tests|cluster_tests"
      ;;
    profile)
      dir=build-asan
      flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DGHS_SANITIZE=ON)
      target="profile_tests bench_tests serve_loadgen chaos_loadgen cluster_loadgen"
      test_regex="profile_tests|bench_tests"
      ;;
    perf)
      dir=build
      flags=(-DCMAKE_BUILD_TYPE=Release -DGHS_SANITIZE=OFF)
      target=serve_loadgen
      ;;
    *)
      echo "unknown config '$config' (release|asan|telemetry|chaos|slo|cluster|tsdb|membership|profile|perf)" >&2
      exit 2
      ;;
  esac
  echo "==> configure $config"
  cmake -B "$dir" -S . "${flags[@]}"
  echo "==> build $config"
  if [[ -n "$target" ]]; then
    # shellcheck disable=SC2086  # $target may list several test binaries
    cmake --build "$dir" -j "$jobs" --target $target
  else
    cmake --build "$dir" -j "$jobs"
  fi
  if [[ "$config" == perf ]]; then
    echo "==> perf smoke (10^5 jobs, both queue kinds)"
    "$dir/bench/serve_loadgen" --jobs=100000 --policy=fifo --perf \
      --queue=heap >/dev/null
    "$dir/bench/serve_loadgen" --jobs=100000 --policy=fifo --perf \
      --queue=calendar >/dev/null
    echo "==> perf gate (wall-clock lower bounds)"
    python3 scripts/perf_gate.py --bindir "$dir/bench" --only serve_perf
    continue
  fi
  echo "==> test $config"
  if [[ -n "$test_regex" ]]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" -R "$test_regex"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
  if [[ "$config" == tsdb ]]; then
    echo "==> series determinism smoke (same-seed byte identity under ASan)"
    tmp=$(mktemp -d)
    "$dir/bench/cluster_loadgen" --nodes=4 --jobs=2000 --scrape-interval=50 \
      --series-out="$tmp/a.series.json" >/dev/null 2>&1
    "$dir/bench/cluster_loadgen" --nodes=4 --jobs=2000 --scrape-interval=50 \
      --series-out="$tmp/b.series.json" >/dev/null 2>&1
    cmp "$tmp/a.series.json" "$tmp/b.series.json"
    python3 scripts/metrics_diff.py --series \
      "$tmp/a.series.json" "$tmp/b.series.json"
    rm -rf "$tmp"
  fi
  if [[ "$config" == membership ]]; then
    echo "==> crash/drain determinism smoke (same-seed byte identity under ASan)"
    tmp=$(mktemp -d)
    "$dir/bench/cluster_loadgen" --nodes=4 --jobs=2000 \
      --crash-plan=1@300us:2ms --drain-at=3@1ms --heartbeat-us=100 \
      >"$tmp/a.json" 2>/dev/null
    "$dir/bench/cluster_loadgen" --nodes=4 --jobs=2000 \
      --crash-plan=1@300us:2ms --drain-at=3@1ms --heartbeat-us=100 \
      >"$tmp/b.json" 2>/dev/null
    cmp "$tmp/a.json" "$tmp/b.json"
    rm -rf "$tmp"
    echo "==> flag-validation smoke (out-of-range node targets exit 2)"
    for bad in "--nodes=0" "--fault-node=9" "--crash-plan=9@1ms" \
               "--drain-at=9@1ms" "--crash-plan=bogus"; do
      status=0
      "$dir/bench/cluster_loadgen" --nodes=4 "$bad" >/dev/null 2>&1 \
        || status=$?
      if [[ "$status" -ne 2 ]]; then
        echo "expected exit 2 for $bad, got $status" >&2
        exit 1
      fi
    done
  fi
  if [[ "$config" == profile ]]; then
    echo "==> profiler determinism smoke (same-seed byte identity under ASan)"
    tmp=$(mktemp -d)
    for run in a b; do
      "$dir/bench/serve_loadgen" --jobs=500 --cost-report \
        --profile-interval=50 --profile-out="$tmp/$run.folded" \
        >"$tmp/$run.json" 2>/dev/null
    done
    cmp "$tmp/a.json" "$tmp/b.json"
    cmp "$tmp/a.folded" "$tmp/b.folded"
    echo "==> profiler-off byte-identity (snapshot unchanged by attribution)"
    # Attribution only (--cost-report, no --profile-interval): sampling
    # adds the profiler's own tick events to the sim, which legitimately
    # moves ghs_sim_* — same as scraper ticks. Non-UM workload: unified
    # jobs warm the tuner memo-cache when a recorder is attached (the
    # same documented perturbation tracing has), so the identity property
    # is checked without --um-fraction.
    "$dir/bench/serve_loadgen" --jobs=500 --metrics-out="$tmp/off.prom" \
      >/dev/null 2>&1
    "$dir/bench/serve_loadgen" --jobs=500 --metrics-out="$tmp/on.prom" \
      --cost-report >/dev/null 2>&1
    python3 scripts/metrics_diff.py "$tmp/off.prom.json" "$tmp/on.prom.json"
    echo "==> conservation smoke (fleet with crash/replay + remote transfers)"
    # write_json GHS_CHECKs attributed == telemetry totals; a leak aborts.
    "$dir/bench/cluster_loadgen" --nodes=4 --jobs=1000 --router=all \
      --remote-fraction=0.4 --um-fraction=0.2 --crash-plan=1@300us:2ms \
      --heartbeat-us=100 --cost-report --profile-interval=50 \
      >/dev/null 2>&1
    "$dir/bench/chaos_loadgen" --jobs=500 --um-fraction=0.3 --cost-report \
      --profile-interval=50 >/dev/null 2>&1
    rm -rf "$tmp"
    echo "==> flag-validation smoke (bad profile/trace flags exit 2)"
    for bad in "--profile-interval=-1" "--profile-out=x.folded" \
               "--trace-sample=1.5" "--trace-sample=-0.1" \
               "--um-fraction=2" "--scrape-interval=-1"; do
      status=0
      "$dir/bench/serve_loadgen" --jobs=10 "$bad" >/dev/null 2>&1 \
        || status=$?
      if [[ "$status" -ne 2 ]]; then
        echo "expected exit 2 for $bad, got $status" >&2
        exit 1
      fi
    done
    echo "==> instrument-name lint (code vs docs/OBSERVABILITY.md)"
    python3 scripts/lint_instruments.py
  fi
  if [[ "$config" == release ]]; then
    echo "==> instrument-name lint (code vs docs/OBSERVABILITY.md)"
    python3 scripts/lint_instruments.py
    echo "==> perf gate ($config)"
    python3 scripts/perf_gate.py --bindir "$dir/bench"
  fi
done
echo "==> all green"
