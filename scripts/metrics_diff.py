#!/usr/bin/env python3
"""Compare two telemetry JSON snapshots (telemetry::write_json_snapshot).

Typical uses:

  # Determinism gate: same-seed runs must match exactly.
  $ build/bench/serve_loadgen --seed=7 --metrics-out=a.prom >/dev/null
  $ build/bench/serve_loadgen --seed=7 --metrics-out=b.prom >/dev/null
  $ scripts/metrics_diff.py a.prom.json b.prom.json

  # Regression gate: flag counters that moved more than 5% between a
  # baseline snapshot and a candidate one.
  $ scripts/metrics_diff.py --threshold=0.05 baseline.json candidate.json

  # Per-node namespaces: a cluster snapshot labels every node-level
  # instrument with node="i". Compare one node across two fleet runs:
  $ scripts/metrics_diff.py --select-label node=3 a.prom.json b.prom.json

  # ... or check a node against a standalone-service snapshot by
  # selecting its namespace and then stripping the label (instruments
  # without the label — the standalone ones, and any cluster-level
  # metrics — pass selection untouched):
  $ scripts/metrics_diff.py --select-label node=0 --strip-label node \\
      solo.prom.json fleet.prom.json

  # Time-series dumps (--series-out, format ghs-series-v1) use --series.
  # Each series contributes its point/drop counters, value sums, and
  # per-tier rollup shape, so same-seed runs must match exactly and a
  # thresholded compare flags series whose totals drifted:
  $ scripts/metrics_diff.py --series a.series.json b.series.json

  # Top-level loadgen reports (serve/chaos/cluster stdout JSON) use
  # --report. Every numeric leaf is compared by its JSON path; the
  # build_info stamp itself is excluded from the value diff but its
  # schema version is enforced first — two reports whose binaries speak
  # different report schemas refuse to diff (exit 2) instead of
  # producing a wall of spurious NEW/REMOVED lines:
  $ scripts/metrics_diff.py --report a.report.json b.report.json

Exit status: 0 when the snapshots agree (within the threshold), 1 when any
instrument regressed/appeared/disappeared, 2 on usage errors — including a
missing or malformed snapshot file and a --report schema mismatch.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read snapshot {path}: {err}", file=sys.stderr)
        sys.exit(2)
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            print(f"error: {path} is not a telemetry snapshot "
                  f"(missing '{section}')", file=sys.stderr)
            sys.exit(2)
    return snapshot


def load_series(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read series dump {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("format") != "ghs-series-v1" or "series" not in doc:
        print(f"error: {path} is not a ghs-series-v1 dump", file=sys.stderr)
        sys.exit(2)
    return doc


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read report {path}: {err}", file=sys.stderr)
        sys.exit(2)
    info = doc.get("build_info")
    if not isinstance(info, dict) or "schema" not in info:
        print(f"error: {path} is not a loadgen report (missing "
              f"'build_info.schema' — produced by a pre-v2 binary?)",
              file=sys.stderr)
        sys.exit(2)
    return doc


def require_matching_schema(baseline, candidate, baseline_path,
                            candidate_path):
    """Refuses to diff reports from shape-incompatible binaries."""
    before = baseline["build_info"]["schema"]
    after = candidate["build_info"]["schema"]
    if before != after:
        print(f"error: report schema mismatch: {baseline_path} is "
              f"'{before}' but {candidate_path} is '{after}'; not "
              f"comparing shape-incompatible reports", file=sys.stderr)
        sys.exit(2)


def flatten_report(doc):
    """One {json path: numeric value} map per loadgen report.

    build_info is compared via its schema gate, not per-field (compiler
    versions legitimately differ between comparable runs), and the
    --perf section is wall-clock by design, so both stay out.
    """
    values = {}

    def walk(node, path):
        if isinstance(node, dict):
            for key, child in node.items():
                walk(child, f"{path}.{key}" if path else key)
        elif isinstance(node, list):
            for index, child in enumerate(node):
                walk(child, f"{path}[{index}]")
        elif isinstance(node, bool):
            values[path] = float(node)
        elif isinstance(node, (int, float)):
            values[path] = float(node)

    for key, child in doc.items():
        if key in ("build_info", "perf"):
            continue
        walk(child, key)
    return values


def parse_instrument(name):
    """Splits 'name{k="v",...}' into (base, [(k, v), ...])."""
    brace = name.find("{")
    if brace < 0 or not name.endswith("}"):
        return name, []
    labels = []
    body = name[brace + 1:-1]
    for part in body.split(","):
        key, _, value = part.partition("=")
        labels.append((key, value.strip('"')))
    return name[:brace], labels


def render_instrument(base, labels):
    if not labels:
        return base
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return base + "{" + body + "}"


def rewrite(snapshot, path, select, strip):
    """Applies --select-label / --strip-label to every section in place.

    Selection drops instruments that carry a requested key with a DIFFERENT
    value; instruments without the key pass through, so a standalone
    snapshot survives `--select-label node=0` intact and cluster-level
    (node-less) instruments ride along with whichever node is selected.
    Stripping then removes the key from the rendered name so namespaced
    instruments line up with unlabelled ones. Two instruments collapsing
    onto one name after stripping is ambiguous, hence a usage error.
    """
    if not select and not strip:
        return snapshot
    for section in ("counters", "gauges", "histograms"):
        rewritten = {}
        for name, value in snapshot[section].items():
            base, labels = parse_instrument(name)
            present = dict(labels)
            if any(key in present and present[key] != want
                   for key, want in select):
                continue
            kept = [(k, v) for k, v in labels if k not in strip]
            new_name = render_instrument(base, kept)
            if new_name in rewritten:
                print(f"error: --strip-label collapses two instruments in "
                      f"{path} onto '{new_name}'", file=sys.stderr)
                sys.exit(2)
            rewritten[new_name] = value
        snapshot[section] = rewritten
    return snapshot


def split_series_key(key):
    """Splits a series key into (instrument, derived suffix).

    The scraper keys histogram-derived series as 'name{labels}:count',
    ':sum', or ':p95'; the suffix follows the closing brace (or, for an
    unlabelled instrument, the bare name — metric names themselves never
    contain ':').
    """
    brace = key.rfind("}")
    if brace >= 0:
        rest = key[brace + 1:]
        if rest.startswith(":"):
            return key[:brace + 1], rest
        return key, ""
    colon = key.find(":")
    if colon >= 0:
        return key[:colon], key[colon:]
    return key, ""


def rewrite_series(doc, path, select, strip):
    """--select-label / --strip-label over a series dump.

    Same pass-through semantics as rewrite(): selection keeps series whose
    instrument lacks the key entirely, and stripping re-renders the key
    with the label removed, derived suffix preserved.
    """
    if not select and not strip:
        return doc
    rewritten = {}
    for key, body in doc["series"].items():
        instrument, suffix = split_series_key(key)
        base, labels = parse_instrument(instrument)
        present = dict(labels)
        if any(k in present and present[k] != want for k, want in select):
            continue
        kept = [(k, v) for k, v in labels if k not in strip]
        new_key = render_instrument(base, kept) + suffix
        if new_key in rewritten:
            print(f"error: --strip-label collapses two series in "
                  f"{path} onto '{new_key}'", file=sys.stderr)
            sys.exit(2)
        rewritten[new_key] = body
    doc["series"] = rewritten
    return doc


def flatten_series(doc):
    """One {key: numeric value} map per series dump.

    Per series: lifetime point/drop counters, value sums, the retained raw
    sample count and its value sum, and each rollup tier's row and folded
    sample counts. Timestamps are left out so a thresholded compare between
    runs of slightly different length reports value drift, not clock skew;
    the exact (threshold 0) gate still catches any behavioural divergence
    because every scraped value lands in a sum.
    """
    values = {
        "meta interval_ps": float(doc["interval_ps"]),
        "meta scrapes": float(doc["scrapes"]),
    }
    for key, body in doc["series"].items():
        prefix = f"series {key}"
        values[f"{prefix} points"] = float(body["points"])
        values[f"{prefix} dropped"] = float(body["dropped"])
        values[f"{prefix} sum"] = float(body["sum"])
        values[f"{prefix} dropped_sum"] = float(body["dropped_sum"])
        samples = body.get("samples", [])
        values[f"{prefix} raw points"] = float(len(samples))
        values[f"{prefix} raw sum"] = float(sum(v for _, v in samples))
        for tier in body.get("rollups", []):
            rows = tier.get("rows", [])
            t = tier.get("tier", 0)
            values[f"{prefix} tier{t} rows"] = float(len(rows))
            values[f"{prefix} tier{t} folded"] = float(
                sum(row[2] for row in rows))
    return values


def flatten(snapshot):
    """One {instrument: numeric value} map per snapshot.

    Histograms contribute their count, sum, and per-bucket counts. The
    "exemplars" sub-object is deliberately excluded: exemplar trace_ids
    name whichever trace last landed in a bucket, so two behaviourally
    identical runs of differently-traced builds may disagree on them —
    they are debugging breadcrumbs, not metric values.
    """
    values = {}
    for name, value in snapshot["counters"].items():
        values[f"counter {name}"] = float(value)
    for name, value in snapshot["gauges"].items():
        values[f"gauge {name}"] = float(value)
    for name, hist in snapshot["histograms"].items():
        values[f"histogram {name} count"] = float(hist["count"])
        values[f"histogram {name} sum"] = float(hist["sum"])
        for le, bucket_count in hist.get("buckets", {}).items():
            values[f"histogram {name} le={le}"] = float(bucket_count)
    return values


def relative_delta(before, after):
    if before == after:
        return 0.0
    denom = max(abs(before), abs(after))
    return abs(after - before) / denom


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline snapshot (.json)")
    parser.add_argument("candidate", help="candidate snapshot (.json)")
    parser.add_argument(
        "--threshold", type=float, default=0.0,
        help="allowed relative change per instrument (default 0 = exact)")
    parser.add_argument(
        "--select-label", action="append", default=[], metavar="KEY=VALUE",
        help="keep only instruments labelled KEY=\"VALUE\" (repeatable; "
             "e.g. node=3 for one node of a cluster snapshot)")
    parser.add_argument(
        "--strip-label", action="append", default=[], metavar="KEY",
        help="drop label KEY from instrument names after selection "
             "(repeatable), aligning namespaced and plain snapshots")
    parser.add_argument(
        "--series", action="store_true",
        help="compare ghs-series-v1 time-series dumps (--series-out files) "
             "instead of telemetry snapshots")
    parser.add_argument(
        "--report", action="store_true",
        help="compare top-level loadgen reports (stdout JSON); enforces a "
             "matching build_info.schema before diffing")
    args = parser.parse_args()
    if args.series and args.report:
        parser.error("--series and --report are mutually exclusive")
    if args.report and (args.select_label or args.strip_label):
        parser.error("--select-label/--strip-label apply to snapshots and "
                     "series, not reports")
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    select = []
    for spec in args.select_label:
        key, eq, value = spec.partition("=")
        if not eq or not key:
            parser.error(f"--select-label needs KEY=VALUE, got '{spec}'")
        select.append((key, value))
    strip = set(args.strip_label)

    if args.report:
        baseline_doc = load_report(args.baseline)
        candidate_doc = load_report(args.candidate)
        require_matching_schema(baseline_doc, candidate_doc,
                                args.baseline, args.candidate)
        before = flatten_report(baseline_doc)
        after = flatten_report(candidate_doc)
    elif args.series:
        before = flatten_series(rewrite_series(
            load_series(args.baseline), args.baseline, select, strip))
        after = flatten_series(rewrite_series(
            load_series(args.candidate), args.candidate, select, strip))
    else:
        before = flatten(rewrite(load(args.baseline), args.baseline,
                                 select, strip))
        after = flatten(rewrite(load(args.candidate), args.candidate,
                                select, strip))

    failures = []
    for key in sorted(set(before) | set(after)):
        if key not in before:
            failures.append(
                f"NEW       {key} = {after[key]:g} (only in "
                f"{args.candidate}; missing from {args.baseline})")
        elif key not in after:
            failures.append(
                f"REMOVED   {key} (was {before[key]:g} in "
                f"{args.baseline}; missing from {args.candidate})")
        else:
            delta = relative_delta(before[key], after[key])
            if delta > args.threshold:
                failures.append(
                    f"CHANGED   {key}: {before[key]:g} -> {after[key]:g} "
                    f"({delta:+.1%} vs threshold {args.threshold:.1%})")

    if failures:
        print(f"{len(failures)} instrument(s) outside threshold "
              f"{args.threshold:g}:")
        for line in failures:
            print(f"  {line}")
        return 1

    print(f"snapshots agree: {len(after)} instrument value(s) within "
          f"threshold {args.threshold:g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
