#!/usr/bin/env python3
"""Two-way instrument-name lint: code vs docs/OBSERVABILITY.md.

Every telemetry instrument the simulator registers is named by a string
literal starting with "ghs_" somewhere under src/ or bench/.  The
instrument inventory in docs/OBSERVABILITY.md is supposed to be the
complete catalogue of those names.  This lint keeps the two in sync, in
both directions:

  * a name registered in code but absent from the docs fails the lint
    (undocumented instrument), and
  * a full name in the docs that no code registers fails the lint
    (stale docs).

Doc spellings the extractor understands:

  * label sets are stripped:      ghs_um_migrated_bytes_total{dest}
  * mid-name braces expand:       ghs_serve_jobs_{admitted,rejected}_total
  * prose wildcards are ignored:  ghs_fault_* / ghs_serve_retry_*
    (they never satisfy coverage -- the docs must still enumerate the
    full names somewhere).

Exit status: 0 when the sets match, 1 with a listing per direction when
they do not, 2 on usage/environment errors.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
CODE_DIRS = ("src", "bench")
DOC = ROOT / "docs" / "OBSERVABILITY.md"
CODE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

# Only quoted literals count as registrations; the opening quote anchors
# the match so identifiers and comments never leak in.
CODE_NAME = re.compile(r'"(ghs_[a-z0-9_]+)')
# Doc tokens may carry label braces, expansion braces, or a prose '*'.
DOC_TOKEN = re.compile(r"ghs_[a-z0-9_]+(?:\{[a-z0-9_,]+\}[a-z0-9_]*)?\*?")
EXPANSION = re.compile(r"\{([a-z0-9_,]+)\}")


def code_names() -> set[str]:
    names: set[str] = set()
    for top in CODE_DIRS:
        for path in sorted((ROOT / top).rglob("*")):
            if path.suffix in CODE_SUFFIXES:
                names.update(CODE_NAME.findall(path.read_text()))
    return names


def expand_doc_token(token: str) -> list[str]:
    """One doc token -> zero or more full instrument names."""
    if token.endswith("*") or token.endswith("_"):
        return []  # prose wildcard / prefix fragment, never a full name
    brace = EXPANSION.search(token)
    if brace is None:
        return [token]
    if token.endswith("}"):  # trailing {dest} / {device} is a label set
        return [token[: brace.start()]]
    head, tail = token[: brace.start()], token[brace.end() :]
    return [head + alt + tail for alt in brace.group(1).split(",")]


def doc_names() -> set[str]:
    names: set[str] = set()
    for token in DOC_TOKEN.findall(DOC.read_text()):
        names.update(expand_doc_token(token))
    return names


def main() -> int:
    if not DOC.is_file():
        print(f"lint_instruments: {DOC} not found", file=sys.stderr)
        return 2
    in_code = code_names()
    in_docs = doc_names()
    undocumented = sorted(in_code - in_docs)
    stale = sorted(in_docs - in_code)
    if undocumented:
        print(
            f"{len(undocumented)} instrument(s) registered in code but "
            f"missing from {DOC.relative_to(ROOT)}:",
            file=sys.stderr,
        )
        for name in undocumented:
            print(f"  {name}", file=sys.stderr)
    if stale:
        print(
            f"{len(stale)} instrument(s) documented in "
            f"{DOC.relative_to(ROOT)} but registered nowhere under "
            f"{'/'.join(CODE_DIRS)}:",
            file=sys.stderr,
        )
        for name in stale:
            print(f"  {name}", file=sys.stderr)
    if undocumented or stale:
        return 1
    print(
        f"lint_instruments: {len(in_code)} instrument names consistent "
        "between code and docs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
